"""The fleet simulator: N decision pipelines over one world, bus and clock.

A fleet mission flies ``n_drones`` copies of the decision stack through one
shared :class:`~repro.environment.world.World`.  Nothing is forked: each
drone gets its own :class:`~repro.simulation.pipeline.DecisionPipeline`
instantiated inside its own :class:`~repro.middleware.topic.TopicNamespace`
(``/drone/<id>/sense/scan``, …) on a *shared* ``TopicBus``/``Executor``/
``SimClock``, so all cascades interleave on one middleware substrate and the
executor's dispatch log is a single, deterministic witness for the whole
fleet.

Interleaving is deterministic round-robin at decision granularity: every
epoch, each active drone (in drone-id order) publishes its sensor tick and
fully drains its cascade before the next drone starts.  The shared clock
advances once per epoch by the slowest drone's decision interval, which
keeps the fleet time-synchronised the way a lock-stepped HIL rig would be.

Peers appear to each other as obstacles.  Before each drone's turn its
peers' current positions are folded into the world's *agent* obstacle layer
(ground truth for depth cameras and collision probes) and re-marked into
that drone's occupancy octree through the same incremental
``mark_box``/``clear_cells`` spatial-index path the kinematic movers use —
so each drone's octomap, governor profile and planner all see the rest of
the fleet where it currently is.

With ``n_drones=1`` nothing of the above engages: no peers, the root
namespace, and an epoch loop that mirrors
:meth:`~repro.simulation.mission.MissionSimulator.run` statement for
statement — single-drone fleet missions are bit-identical to the
single-drone simulator (golden-pinned in the test suite).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.dynamics.drone import QuadrotorKinematics
from repro.dynamics.energy import EnergyModel
from repro.compute.costs import WorkloadCostModel
from repro.core.profilers import ProfilerSuite
from repro.environment.generator import GeneratedEnvironment
from repro.environment.world import Obstacle
from repro.environment.zones import ZoneMap
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.middleware.clock import SimClock
from repro.middleware.executor import Executor
from repro.middleware.topic import TopicBus, TopicNamespace
from repro.simulation.faults import FaultSet
from repro.simulation.metrics import MissionMetrics
from repro.simulation.mission import (
    MissionConfig,
    MissionResult,
    MissionSimulator,
    Runtime,
)
from repro.simulation.pipeline import DecisionPipeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.recorder import TraceRecorder


@dataclass(frozen=True, slots=True)
class FleetMetrics:
    """Fleet-level aggregates a per-drone summary cannot express.

    Attributes:
        n_drones: fleet size.
        completion_rate: fraction of drones that reached their goal without
            colliding, in [0, 1].
        collisions: number of drones that hit an obstacle (or a peer).
        makespan_s: simulated time until the last drone terminated.
        fleet_energy_kj: summed energy over the fleet, kilojoules.
        min_separation_m: smallest pairwise drone distance observed at any
            epoch boundary (``None`` for single-drone missions — there is
            no pair to measure).
        airspace_conflicts: number of epochs during which some pair of
            active drones was closer than the conflict distance.
    """

    n_drones: int
    completion_rate: float
    collisions: int
    makespan_s: float
    fleet_energy_kj: float
    min_separation_m: Optional[float]
    airspace_conflicts: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_drones": self.n_drones,
            "completion_rate": self.completion_rate,
            "collisions": self.collisions,
            "makespan_s": self.makespan_s,
            "fleet_energy_kj": self.fleet_energy_kj,
            "min_separation_m": self.min_separation_m,
            "airspace_conflicts": self.airspace_conflicts,
        }


@dataclass
class FleetResult:
    """Everything one flown fleet mission produced.

    Attributes:
        metrics: fleet-aggregate :class:`MissionMetrics` — at ``n_drones=1``
            these are exactly the single drone's metrics, so campaign tables
            keyed on mission metrics work unchanged.
        fleet: the fleet-only aggregates (completion rate, separation, …).
        drones: one full :class:`MissionResult` per drone, in drone-id order.
        environment: the shared environment (drone 0's view).
        design: name of the runtime evaluated.
        pipeline: drone 0's pipeline (``None`` once the result crossed a
            campaign process boundary, like the single-drone field).
    """

    metrics: MissionMetrics
    fleet: FleetMetrics
    drones: List[MissionResult]
    environment: GeneratedEnvironment
    design: str
    pipeline: Optional[DecisionPipeline] = None

    @property
    def traces(self):
        """Drone 0's decision traces (the single-drone result's shape)."""
        return self.drones[0].traces

    @property
    def ledger(self):
        """Drone 0's latency ledger."""
        return self.drones[0].ledger


class FleetSimulator:
    """Runs N drones of one design through one shared environment.

    Args:
        environment: the shared generated environment; drone 0 flies its
            start→goal mission verbatim, drones 1..N-1 fly laterally offset
            copies of it (alternating sides, ``spacing_m`` apart).
        runtime_factory: zero-argument callable producing a fresh runtime
            per drone (each drone gets its own governor state).
        config: mission parameters; drone k>0 runs with ``rng_seed + k`` so
            per-drone planners explore independently.
        n_drones: fleet size (≥ 1).
        spacing_m: lateral formation spacing between adjacent start offsets.
        peer_box_m: edge length of the box a drone occupies in its peers'
            maps and in the world's agent layer.
        conflict_distance_m: pairwise distance under which an epoch counts
            as an airspace conflict.
    """

    def __init__(
        self,
        environment: GeneratedEnvironment,
        runtime_factory: Callable[[], Runtime],
        config: Optional[MissionConfig] = None,
        n_drones: int = 1,
        cost_model: Optional[WorkloadCostModel] = None,
        energy_model: Optional[EnergyModel] = None,
        kinematics: Optional[QuadrotorKinematics] = None,
        profilers: Optional[ProfilerSuite] = None,
        faults: Optional[FaultSet] = None,
        *,
        spacing_m: float = 6.0,
        peer_box_m: float = 1.0,
        conflict_distance_m: float = 2.0,
    ) -> None:
        if n_drones < 1:
            raise ValueError("a fleet needs at least one drone")
        if spacing_m <= 0 or peer_box_m <= 0 or conflict_distance_m <= 0:
            raise ValueError("fleet distances must be positive metres")
        self.environment = environment
        self.config = config or MissionConfig()
        self.n_drones = n_drones
        self.spacing_m = spacing_m
        self.peer_box_m = peer_box_m
        self.conflict_distance_m = conflict_distance_m

        self.simulators: List[MissionSimulator] = []
        for drone_id in range(n_drones):
            if drone_id == 0:
                env, cfg = environment, self.config
            else:
                env = self._offset_environment(drone_id)
                cfg = replace(self.config, rng_seed=self.config.rng_seed + drone_id)
            self.simulators.append(
                MissionSimulator(
                    env,
                    runtime_factory(),
                    cfg,
                    cost_model=cost_model,
                    energy_model=energy_model,
                    kinematics=kinematics,
                    profilers=profilers,
                    faults=faults,
                )
            )

    # ------------------------------------------------------------------
    # Formation
    # ------------------------------------------------------------------
    def _lateral_axis(self) -> Vec3:
        """Unit vector perpendicular (in the x-y plane) to start→goal."""
        axis = self.environment.goal - self.environment.start
        lateral = Vec3(-axis.y, axis.x, 0.0)
        norm = lateral.norm()
        if norm < 1e-9:
            return Vec3(0.0, 1.0, 0.0)
        return lateral * (1.0 / norm)

    def _formation_offset(self, drone_id: int) -> float:
        """Signed lateral offset of a drone: 0, +s, -s, +2s, -2s, …"""
        if drone_id == 0:
            return 0.0
        magnitude = (drone_id + 1) // 2
        sign = 1.0 if drone_id % 2 == 1 else -1.0
        return sign * magnitude * self.spacing_m

    def _offset_environment(self, drone_id: int) -> GeneratedEnvironment:
        """Drone k's view of the shared world: shifted endpoints, same world."""
        shift = self._lateral_axis() * self._formation_offset(drone_id)
        start = self.environment.start + shift
        goal = self.environment.goal + shift
        return replace(
            self.environment, start=start, goal=goal, zone_map=ZoneMap(start, goal)
        )

    # ------------------------------------------------------------------
    # Peer exposure
    # ------------------------------------------------------------------
    def _expose_peers(
        self,
        drone_id: int,
        active: List[int],
        pipelines: List[DecisionPipeline],
        peer_marks: List[List[tuple]],
    ) -> None:
        """Fold the other active drones into this drone's view of the world.

        Updates the world's agent obstacle layer (ground truth) and re-marks
        the peers' boxes into this drone's octree through the incremental
        spatial index, clearing the previous epoch's footprints first.
        """
        size = Vec3(self.peer_box_m, self.peer_box_m, self.peer_box_m)
        obstacles = [
            Obstacle(
                AABB.from_center(pipelines[peer].flight.state.position, size),
                name=f"drone_{peer}",
            )
            for peer in active
            if peer != drone_id
        ]
        self.environment.world.set_agent_obstacles(obstacles)
        octree = self.simulators[drone_id].operators.octree
        if peer_marks[drone_id]:
            octree.clear_cells(peer_marks[drone_id])
        keys: List[tuple] = []
        for obstacle in obstacles:
            keys.extend(octree.mark_box(obstacle.box))
        peer_marks[drone_id] = keys

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        recorder: Optional["TraceRecorder"] = None,
        taps: Sequence = (),
    ) -> FleetResult:
        """Fly the fleet mission and return per-drone plus aggregate results."""
        cfg = self.config
        n = self.n_drones
        clock = SimClock()
        bus = TopicBus()
        executor = Executor(bus, clock, record_dispatch=True)
        pipelines: List[DecisionPipeline] = []
        for drone_id, sim in enumerate(self.simulators):
            namespace = (
                TopicNamespace() if n == 1 else TopicNamespace.for_drone(drone_id)
            )
            pipeline = sim.build_pipeline(
                namespace=namespace, executor=executor, drone_id=drone_id
            )
            if recorder is not None:
                pipeline.add_tap(recorder, energy_model=sim.energy_model)
            for tap in taps:
                pipeline.add_tap(tap, energy_model=sim.energy_model)
            pipelines.append(pipeline)

        distance = [0.0] * n
        collided = [False] * n
        reached = [False] * n
        finish_time: List[Optional[float]] = [None] * n
        last_outcome = [None] * n
        peer_marks: List[List[tuple]] = [[] for _ in range(n)]
        active = list(range(n))
        min_separation: Optional[float] = None
        airspace_conflicts = 0

        for epoch in range(cfg.max_decisions):
            if clock.now > cfg.max_mission_time_s:
                break
            if not active:
                break

            # Deterministic round-robin: each drone's cascade fully drains
            # (step() spins the shared executor dry) before the next starts.
            intervals = []
            for drone_id in active:
                if n > 1:
                    self._expose_peers(drone_id, active, pipelines, peer_marks)
                outcome = pipelines[drone_id].step(epoch)
                last_outcome[drone_id] = outcome
                distance[drone_id] += outcome.flown
                intervals.append(outcome.interval)
            clock.advance(max(intervals))

            if len(active) >= 2:
                positions = [pipelines[d].flight.state.position for d in active]
                epoch_min = min(
                    a.distance_to(b) for a, b in itertools.combinations(positions, 2)
                )
                if min_separation is None or epoch_min < min_separation:
                    min_separation = epoch_min
                if epoch_min < self.conflict_distance_m:
                    airspace_conflicts += 1

            # Per-drone termination, checked in the single-drone order:
            # collision, then goal, then the plan-failure streak.  Finished
            # drones leave the airspace (peers stop seeing them next epoch).
            for drone_id in list(active):
                outcome = last_outcome[drone_id]
                goal = self.simulators[drone_id].environment.goal
                done = False
                if outcome.hit:
                    collided[drone_id] = True
                    done = True
                elif outcome.state.position.distance_to(goal) <= cfg.goal_tolerance_m:
                    reached[drone_id] = True
                    done = True
                elif (
                    pipelines[drone_id].planning.consecutive_plan_failures
                    >= cfg.max_consecutive_plan_failures
                ):
                    done = True
                if done:
                    finish_time[drone_id] = clock.now
                    active.remove(drone_id)

        for drone_id in range(n):
            if finish_time[drone_id] is None:
                finish_time[drone_id] = clock.now

        # Leave the shared world clean: no stale agent boxes or peer voxels.
        if n > 1:
            self.environment.world.set_agent_obstacles([])
            for drone_id in range(n):
                if peer_marks[drone_id]:
                    self.simulators[drone_id].operators.octree.clear_cells(
                        peer_marks[drone_id]
                    )

        per_drone: List[MissionMetrics] = []
        deadline_misses: List[int] = []
        results: List[MissionResult] = []
        for drone_id in range(n):
            metrics, misses = self._drone_metrics(
                drone_id,
                pipelines[drone_id],
                distance[drone_id],
                finish_time[drone_id],
                collided[drone_id],
                reached[drone_id],
            )
            per_drone.append(metrics)
            deadline_misses.append(misses)
            sim = self.simulators[drone_id]
            results.append(
                MissionResult(
                    metrics=metrics,
                    traces=pipelines[drone_id].traces,
                    ledger=pipelines[drone_id].ledger,
                    environment=sim.environment,
                    design=sim.runtime.name,
                    pipeline=pipelines[drone_id],
                )
            )

        aggregate = self._aggregate_metrics(per_drone, deadline_misses, finish_time)
        fleet = FleetMetrics(
            n_drones=n,
            completion_rate=sum(1 for m in per_drone if m.success) / n,
            collisions=sum(1 for hit in collided if hit),
            makespan_s=max(finish_time),
            fleet_energy_kj=sum(m.energy_j for m in per_drone) / 1000.0,
            min_separation_m=min_separation,
            airspace_conflicts=airspace_conflicts,
        )
        if recorder is not None:
            recorder.on_mission_end(
                aggregate,
                fleet=fleet.as_dict(),
                drones=[m.as_dict() for m in per_drone],
            )
        return FleetResult(
            metrics=aggregate,
            fleet=fleet,
            drones=results,
            environment=self.environment,
            design=per_drone[0].design,
            pipeline=pipelines[0],
        )

    # ------------------------------------------------------------------
    # Metric assembly
    # ------------------------------------------------------------------
    def _drone_metrics(
        self,
        drone_id: int,
        pipeline: DecisionPipeline,
        distance: float,
        mission_time: float,
        hit: bool,
        reached_goal: bool,
    ) -> tuple[MissionMetrics, int]:
        """One drone's MissionMetrics, assembled exactly as the single-drone
        simulator assembles them (same expressions, same order of operations,
        so N=1 stays bit-identical)."""
        sim = self.simulators[drone_id]
        traces = pipeline.traces
        ledger = pipeline.ledger
        mean_velocity = distance / mission_time if mission_time > 0 else 0.0
        energy = sim.energy_model.mission_energy(
            flight_time_s=mission_time,
            mean_speed=mean_velocity,
            compute_busy_s=pipeline.cpu.total_busy_seconds(),
        )
        latencies = ledger.end_to_end_latencies()
        deadline_misses = sum(1 for t in traces if not t.deadline_met)
        metrics = MissionMetrics(
            design=sim.runtime.name,
            success=reached_goal and not hit,
            collided=hit,
            mission_time_s=mission_time,
            distance_travelled_m=distance,
            mean_velocity_mps=mean_velocity,
            energy_j=energy,
            mean_cpu_utilization=pipeline.cpu.mean_utilization(),
            decision_count=len(traces),
            median_latency_s=ledger.median_latency(),
            max_latency_s=max(latencies) if latencies else 0.0,
            deadline_miss_rate=deadline_misses / len(traces) if traces else 0.0,
            replan_count=sim.operators.plan_count,
        )
        return metrics, deadline_misses

    def _aggregate_metrics(
        self,
        per_drone: List[MissionMetrics],
        deadline_misses: List[int],
        finish_time: List[float],
    ) -> MissionMetrics:
        """Fleet-aggregate MissionMetrics.

        Every fold collapses to the single drone's value at N=1 (sum/max/
        mean over one element, miss counts re-divided by the same decision
        count), which is what makes the aggregate a drop-in replacement for
        the single-drone metrics everywhere downstream.
        """
        n = len(per_drone)
        total_decisions = sum(m.decision_count for m in per_drone)
        return MissionMetrics(
            design=per_drone[0].design,
            success=all(m.success for m in per_drone),
            collided=any(m.collided for m in per_drone),
            mission_time_s=max(finish_time),
            distance_travelled_m=sum(m.distance_travelled_m for m in per_drone),
            mean_velocity_mps=sum(m.mean_velocity_mps for m in per_drone) / n,
            energy_j=sum(m.energy_j for m in per_drone),
            mean_cpu_utilization=sum(m.mean_cpu_utilization for m in per_drone) / n,
            decision_count=total_decisions,
            median_latency_s=sum(m.median_latency_s for m in per_drone) / n,
            max_latency_s=max(m.max_latency_s for m in per_drone),
            deadline_miss_rate=(
                sum(deadline_misses) / total_decisions if total_decisions else 0.0
            ),
            replan_count=sum(m.replan_count for m in per_drone),
        )
