"""The node-based decision pipeline.

The paper's runtime is a ROS pipeline: sensing, profiling, the governor,
perception, planning and flight control are separate nodes exchanging
messages, and both the stage latencies *and* the communication hops between
stages are first-class quantities (the "comm" bars of Figure 11).  This
module reproduces that structure on the in-process middleware: six nodes
communicate over typed topics through the
:class:`~repro.middleware.executor.Executor`, and every decision is one
message cascade through the graph.

Topic graph (one cascade per decision, FIFO-dispatched)::

    SenseNode ──/sense/scan──▶ ProfileNode ──/profile/space──▶ GovernorNode
        ▲                           ▲                                │
        │                           │                        /governor/decision
    /flight/result        /planning/trajectory                       │
        │                           │                                ▼
    FlightNode ◀──/planning/output── PlanningNode ◀──/perception/output── PerceptionNode
        │                                  ▲
        └──────────/flight/result──────────┘   (stall recovery drops the trajectory)

Latency accounting: each node charges its own compute latency (via
:meth:`~repro.middleware.node.Node.charge_compute`), and the FlightNode —
the last stage of the cascade — assembles the canonical per-stage breakdown
for the ledger.  The four ``comm_*`` ledger entries are produced as
:class:`PipelineHop` records anchored to the actual :class:`~repro.
middleware.message.Message` that crossed each hop: the hop stores the
message's sequence number and publication stamp, and its delivery stamp is
the publication stamp plus the serialisation cost of the payloads that
really flowed on the bus that decision, so the entry is the hop's stamp
delta rather than a free-floating constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro import hotpath
from repro.compute.costs import WorkloadCostModel
from repro.compute.utilization import CpuUtilizationTracker
from repro.control.follower import PurePursuitFollower
from repro.core.governor import GovernorDecision
from repro.core.operators import (
    OperatorSet,
    PerceptionOutput,
    PlanningOutput,
    merge_work,
)
from repro.core.profilers import ProfilerSuite, SpaceProfile
from repro.dynamics.drone import DroneState, QuadrotorKinematics
from repro.environment.generator import GeneratedEnvironment
from repro.geometry.aabb import AABB
from repro.geometry.vec3 import Vec3
from repro.middleware.clock import SimClock
from repro.middleware.executor import Executor
from repro.middleware.latency import LatencyLedger, compute_seconds
from repro.middleware.message import Message
from repro.middleware.node import Node
from repro.middleware.topic import TopicBus, TopicNamespace
from repro.planning.trajectory import Trajectory
from repro.sensors.rig import CameraRig, RigScan
from repro.sensors.state_sensors import StateEstimate, StateSensorSuite
from repro.simulation.faults import FaultSet
from repro.simulation.metrics import DecisionTrace
from repro.simulation.orchestrator import FaultOrchestrator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mission imports us)
    from repro.perception.octomap import OccupancyOctree
    from repro.simulation.mission import MissionConfig, Runtime

# Topic names, one per edge of the pipeline graph.
TOPIC_SCAN = "/sense/scan"
TOPIC_PROFILE = "/profile/space"
TOPIC_DECISION = "/governor/decision"
TOPIC_PERCEPTION = "/perception/output"
TOPIC_PLANNING = "/planning/output"
TOPIC_TRAJECTORY = "/planning/trajectory"
TOPIC_FLIGHT = "/flight/result"

# The profiling cloud uses a fixed, modest resolution: profiling happens
# before the policy exists and its cost is part of the runtime overhead
# already charged by the cost model.
PROFILING_RESOLUTION = 0.6

# Which topic's message carries each comm hop.  The hop names are the
# canonical comm stages of the Figure 11 breakdown; the topics are where the
# corresponding payload actually crosses the bus in this graph.
COMM_HOP_TOPICS: Dict[str, str] = {
    "comm_point_cloud": TOPIC_SCAN,
    "comm_octomap": TOPIC_PERCEPTION,
    "comm_planning": TOPIC_PLANNING,
    "comm_control": TOPIC_TRAJECTORY,
}


@dataclass(frozen=True, slots=True)
class PipelineTopics:
    """The seven topic names of one pipeline instance, resolved in a namespace.

    A single-drone pipeline uses the bare module constants; each drone of a
    fleet gets its own bundle prefixed by its
    :class:`~repro.middleware.topic.TopicNamespace` (``/drone/0/sense/scan``,
    …), so N graphs coexist on one shared bus without crosstalk.
    """

    scan: str = TOPIC_SCAN
    profile: str = TOPIC_PROFILE
    decision: str = TOPIC_DECISION
    perception: str = TOPIC_PERCEPTION
    planning: str = TOPIC_PLANNING
    trajectory: str = TOPIC_TRAJECTORY
    flight: str = TOPIC_FLIGHT

    @classmethod
    def for_namespace(cls, namespace: TopicNamespace) -> "PipelineTopics":
        return cls(
            scan=namespace.topic(TOPIC_SCAN),
            profile=namespace.topic(TOPIC_PROFILE),
            decision=namespace.topic(TOPIC_DECISION),
            perception=namespace.topic(TOPIC_PERCEPTION),
            planning=namespace.topic(TOPIC_PLANNING),
            trajectory=namespace.topic(TOPIC_TRAJECTORY),
            flight=namespace.topic(TOPIC_FLIGHT),
        )

    def comm_hop_topics(self) -> Dict[str, str]:
        """Per-instance analogue of :data:`COMM_HOP_TOPICS`."""
        return {
            "comm_point_cloud": self.scan,
            "comm_octomap": self.perception,
            "comm_planning": self.planning,
            "comm_control": self.trajectory,
        }


#: The root (single-drone) topic bundle: exactly the module constants.
ROOT_TOPICS = PipelineTopics()


# ----------------------------------------------------------------------
# Message payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SenseSample:
    """One decision's sensor capture: the rig scan plus the state estimate."""

    index: int
    scan: RigScan
    estimate: StateEstimate
    dropped: bool = False


@dataclass(frozen=True, slots=True)
class ProfileSample:
    """The Table I space profile extracted for one decision."""

    index: int
    profile: SpaceProfile


@dataclass(frozen=True, slots=True)
class DecisionSample:
    """The governor's policy / deadline / velocity cap for one decision."""

    index: int
    decision: GovernorDecision


@dataclass(frozen=True, slots=True)
class PerceptionSample:
    """The perception stage's output plus the pose it was computed at."""

    index: int
    output: PerceptionOutput
    position: Vec3


@dataclass(frozen=True, slots=True)
class PlanningSample:
    """The planning stage's output and the trajectory handed to control."""

    index: int
    output: PlanningOutput
    trajectory: Optional[Trajectory]
    replanned: bool
    position: Vec3


@dataclass(frozen=True, slots=True)
class TrajectorySample:
    """The currently tracked trajectory (None after a drop)."""

    index: int
    trajectory: Optional[Trajectory]


@dataclass(frozen=True, slots=True)
class FlightResult:
    """What one decision's flight segment produced."""

    index: int
    state: DroneState
    flown: float
    hit: bool
    interval: float
    end_to_end: float
    drop_trajectory: bool


@dataclass(frozen=True, slots=True)
class PipelineHop:
    """One ``comm_*`` ledger entry anchored to the message that crossed the hop.

    Attributes:
        decision_index: the decision the hop belongs to.
        stage: the canonical comm stage name.
        topic: the topic the message crossed.
        message_seq: the sequence number of the actual :class:`Message`.
        published_stamp: the message's header stamp (publication time).
        comm_seconds: the hop's serialisation cost — the share of the
            decision's communication budget, sized by the payloads that flowed
            on the bus this decision.
    """

    decision_index: int
    stage: str
    topic: str
    message_seq: int
    published_stamp: float
    comm_seconds: float

    @property
    def delivered_stamp(self) -> float:
        """When the payload finished crossing the hop (publish + serialisation)."""
        return self.published_stamp + self.comm_seconds

    @property
    def stamp_delta(self) -> float:
        """Delivery minus publication stamp — the measured hop latency."""
        return self.delivered_stamp - self.published_stamp


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
class SenseNode(Node):
    """Captures the camera rig and state sensors; entry point of each cascade.

    The node tracks the drone pose by subscribing to the flight results and
    applies the scenario's sensor faults (dropout, degraded resolution) at
    the capture boundary, so the rest of the pipeline sees ordinary messages.

    The sense boundary is also where the environment's dynamic obstacles
    advance: each tick first steps the
    :class:`~repro.worlds.movers.DynamicObstacleSet` to the decision epoch —
    updating the ground-truth world and re-marking the movers' footprints
    into the occupancy octree through its incremental spatial index — so the
    capture, the planner and the collision probes of this decision all see
    the movers at the same position.
    """

    def __init__(
        self,
        executor: Executor,
        rig: CameraRig,
        sensors: StateSensorSuite,
        environment: GeneratedEnvironment,
        faults: Optional[FaultSet] = None,
        octree: Optional["OccupancyOctree"] = None,
        *,
        orchestrator: Optional[FaultOrchestrator] = None,
        topics: PipelineTopics = ROOT_TOPICS,
        name: str = "sense",
    ) -> None:
        super().__init__(name, executor)
        self.topics = topics
        self.rig = rig
        self.sensors = sensors
        self.environment = environment
        self.faults = faults or FaultSet()
        self.orchestrator = (
            orchestrator
            if orchestrator is not None
            else FaultOrchestrator(self.faults)
        )
        self.dynamics = getattr(environment, "dynamics", None)
        self._octree = octree
        self.dropped_decisions: List[int] = []
        self._position = environment.start
        self._velocity = Vec3.zero()
        self._degraded_rigs: Dict[tuple[int, int], CameraRig] = {}
        self.subscribe(topics.flight, self._on_flight)

    def _on_flight(self, message: Message[FlightResult]) -> None:
        self._position = message.payload.state.position
        self._velocity = message.payload.state.velocity

    def _active_rig(self, decision_index: int) -> CameraRig:
        if not self.orchestrator.enabled:
            return self.rig
        resolution = self.orchestrator.camera_resolution(decision_index)
        if resolution is None:
            return self.rig
        rig = self._degraded_rigs.get(resolution)
        if rig is None:
            rig = self.rig.with_resolution(*resolution)
            self._degraded_rigs[resolution] = rig
        return rig

    def _mover_epoch_overrides(self, decision_index: int) -> Optional[Dict[str, int]]:
        """Per-mover epoch pins from active stuck-mover windows (None = nominal)."""
        if not self.orchestrator.enabled or self.dynamics is None:
            return None
        overrides: Dict[str, int] = {}
        for mover in self.dynamics.movers:
            frozen = self.orchestrator.frozen_epoch(mover.name, decision_index)
            if frozen is not None:
                overrides[mover.name] = frozen
        return overrides or None

    def tick(self, decision_index: int) -> None:
        """Capture one decision's sensor data and start the cascade."""
        if self.dynamics is not None:
            self.dynamics.step(
                decision_index,
                octree=self._octree,
                epoch_overrides=self._mover_epoch_overrides(decision_index),
            )
        rig = self._active_rig(decision_index)
        dropped = self.orchestrator.enabled and self.orchestrator.sensor_dropped(
            decision_index
        )
        if dropped:
            scan = rig.empty_scan(self._position)
            self.dropped_decisions.append(decision_index)
        else:
            scan = rig.capture(self.environment.world, self._position)
        estimate = self.sensors.estimate(
            self.executor.clock.now, self._position, self._velocity
        )
        self.publish(
            self.topics.scan, SenseSample(decision_index, scan, estimate, dropped)
        )


class ProfileNode(Node):
    """Extracts the Table I spatial features from the fresh sensor data."""

    def __init__(
        self,
        executor: Executor,
        profilers: ProfilerSuite,
        operators: OperatorSet,
        rig_max_volume: float,
        goal: Vec3,
        *,
        topics: PipelineTopics = ROOT_TOPICS,
        name: str = "profile",
    ) -> None:
        super().__init__(name, executor)
        self.topics = topics
        self.profilers = profilers
        self.operators = operators
        self.rig_max_volume = rig_max_volume
        self.goal = goal
        self._trajectory: Optional[Trajectory] = None
        self.subscribe(topics.scan, self._on_scan)
        self.subscribe(topics.trajectory, self._on_trajectory)

    def _on_trajectory(self, message: Message[TrajectorySample]) -> None:
        self._trajectory = message.payload.trajectory

    def _on_scan(self, message: Message[SenseSample]) -> None:
        sample = message.payload
        profiling_cloud = self.operators.point_cloud_kernel.process(
            sample.scan, resolution=PROFILING_RESOLUTION
        )
        profile = self.profilers.profile(
            timestamp=self.executor.clock.now,
            state=sample.estimate,
            cloud=profiling_cloud,
            scan=sample.scan,
            octree=self.operators.octree,
            trajectory=self._trajectory,
            rig_max_volume=self.rig_max_volume,
            heading=self.goal - sample.scan.position,
        )
        self.publish(self.topics.profile, ProfileSample(sample.index, profile))


class GovernorNode(Node):
    """Hosts the runtime under test (RoboRun's governor or the baseline)."""

    def __init__(
        self,
        executor: Executor,
        runtime: "Runtime",
        cost_model: WorkloadCostModel,
        *,
        orchestrator: Optional[FaultOrchestrator] = None,
        topics: PipelineTopics = ROOT_TOPICS,
        name: str = "governor",
    ) -> None:
        super().__init__(name, executor)
        self.topics = topics
        self.runtime = runtime
        self.cost_model = cost_model
        self.orchestrator = orchestrator
        self.subscribe(topics.profile, self._on_profile)

    def _on_profile(self, message: Message[ProfileSample]) -> None:
        # A power brownout shrinks the time budget fed to the runtime; the
        # scale-free call is kept as its own branch so fault-free missions
        # (and runtime stubs with the narrow signature) are untouched.
        scale = 1.0
        if self.orchestrator is not None and self.orchestrator.enabled:
            scale = self.orchestrator.budget_scale(message.payload.index)
        if scale != 1.0:
            decision = self.runtime.decide(message.payload.profile, budget_scale=scale)
        else:
            decision = self.runtime.decide(message.payload.profile)
        self.charge_compute(self.cost_model.runtime_latency(self.runtime.spatial_aware))
        self.publish(
            self.topics.decision, DecisionSample(message.payload.index, decision)
        )


class PerceptionNode(Node):
    """Runs the point-cloud and OctoMap kernels under the decided policy."""

    def __init__(
        self,
        executor: Executor,
        operators: OperatorSet,
        cost_model: WorkloadCostModel,
        *,
        topics: PipelineTopics = ROOT_TOPICS,
        name: str = "perception",
    ) -> None:
        super().__init__(name, executor)
        self.topics = topics
        self.operators = operators
        self.cost_model = cost_model
        self._scan: Optional[SenseSample] = None
        self._trajectory: Optional[Trajectory] = None
        self.subscribe(topics.scan, self._on_scan)
        self.subscribe(topics.trajectory, self._on_trajectory)
        self.subscribe(topics.decision, self._on_decision)

    def _on_scan(self, message: Message[SenseSample]) -> None:
        self._scan = message.payload

    def _on_trajectory(self, message: Message[TrajectorySample]) -> None:
        self._trajectory = message.payload.trajectory

    def _on_decision(self, message: Message[DecisionSample]) -> None:
        sample = self._scan
        if sample is None or sample.index != message.payload.index:
            raise RuntimeError("perception received a decision without its scan")
        position = sample.scan.position
        focus = (
            self._trajectory.nearest_point_to(position).position
            if self._trajectory is not None
            else position
        )
        output = self.operators.run_perception(
            sample.scan, message.payload.decision.policy, focus=focus
        )
        self.charge_compute(
            self.cost_model.point_cloud_latency(output.work)
            + self.cost_model.octomap_latency(output.work)
        )
        self.publish(
            self.topics.perception, PerceptionSample(sample.index, output, position)
        )


class PlanningNode(Node):
    """Owns the tracked trajectory: piece-wise planning, blockage, recovery."""

    def __init__(
        self,
        executor: Executor,
        operators: OperatorSet,
        config: "MissionConfig",
        environment: GeneratedEnvironment,
        cost_model: WorkloadCostModel,
        *,
        topics: PipelineTopics = ROOT_TOPICS,
        name: str = "planning",
    ) -> None:
        super().__init__(name, executor)
        self.topics = topics
        self.operators = operators
        self.config = config
        self.environment = environment
        self.cost_model = cost_model
        self.consecutive_plan_failures = 0
        self._decisions_since_plan = 0
        self._trajectory: Optional[Trajectory] = None
        self._decision: Optional[DecisionSample] = None
        self.subscribe(topics.decision, self._on_decision)
        self.subscribe(topics.perception, self._on_perception)
        self.subscribe(topics.flight, self._on_flight)

    # -- helpers (the planning policy of the decision loop) -------------
    def should_replan(
        self,
        trajectory: Optional[Trajectory],
        position: Vec3,
        decisions_since_plan: int,
    ) -> tuple[bool, str]:
        """Decide whether the piece-wise planner must run this decision."""
        cfg = self.config
        if trajectory is None:
            return True, "no_trajectory"
        nearest = trajectory.nearest_point_to(position)
        remaining = trajectory.remaining_length(nearest.time)
        if remaining <= cfg.replan_remaining_m:
            return True, "trajectory_consumed"
        if decisions_since_plan >= cfg.replan_interval_decisions:
            return True, "periodic_refresh"
        return False, "tracking"

    def trajectory_blocked(self, trajectory: Trajectory, position: Vec3) -> bool:
        """Check the path ahead of the drone against the updated occupancy map.

        The check deliberately uses the octree at its native resolution rather
        than the policy-dependent planning view: the per-decision precision
        knob changes cell sizes from decision to decision, and re-validating
        yesterday's path against today's coarser cells would invalidate
        perfectly good trajectories and cause replanning thrash.

        The walk starts at the nearest sample's own index (paths that revisit
        a waypoint used to re-find it by position equality, anchoring at the
        first visit and spending the whole check budget on segments already
        behind the drone) and each segment probe runs through the octree's
        index-backed segment query.
        """
        cfg = self.config
        octree = self.operators.octree
        start_index = trajectory.nearest_point_to(position).index
        points = trajectory.waypoint_positions()
        travelled = 0.0
        step = max(octree.vox_min, 0.5)
        if hotpath.enabled():
            # The segment list depends only on the travelled-distance budget,
            # never on probe outcomes, so collecting it first and probing the
            # whole batch in one index pass returns the same verdict as the
            # early-exiting scalar walk.
            pairs: List[tuple[Vec3, Vec3]] = []
            for a, b in zip(points[start_index:], points[start_index + 1 :]):
                pairs.append((a, b))
                travelled += a.distance_to(b)
                if travelled >= cfg.block_check_distance_m:
                    break
            if not pairs:
                return False
            starts = np.array([(a.x, a.y, a.z) for a, _ in pairs])
            ends = np.array([(b.x, b.y, b.z) for _, b in pairs])
            return bool(octree.segment_occupied_batch(starts, ends, step=step).any())
        for a, b in zip(points[start_index:], points[start_index + 1 :]):
            if octree.segment_occupied(a, b, step=step):
                return True
            travelled += a.distance_to(b)
            if travelled >= cfg.block_check_distance_m:
                break
        return False

    def escape_start(self, position: Vec3) -> Vec3:
        """A planning start near the drone that is clear of mapped obstacles.

        When braking leaves the drone hugging (or, through map noise, inside)
        an occupied cell, planning from the exact drone position fails every
        time.  Planning from the nearest clear spot a voxel or two away lets
        the pipeline recover; the path follower pulls the drone onto the new
        path from wherever it actually is.
        """
        octree = self.operators.octree
        clearance = octree.vox_min * 2.0

        def is_clear(candidate: Vec3) -> bool:
            offsets = (
                Vec3.zero(),
                Vec3(clearance, 0.0, 0.0),
                Vec3(-clearance, 0.0, 0.0),
                Vec3(0.0, clearance, 0.0),
                Vec3(0.0, -clearance, 0.0),
            )
            return not any(octree.is_occupied(candidate + o) for o in offsets)

        if is_clear(position):
            return position
        for radius in (0.6, 1.2, 2.0, 3.0):
            for k in range(8):
                angle = math.pi * k / 4.0
                candidate = position + Vec3(
                    radius * math.cos(angle), radius * math.sin(angle), 0.0
                )
                if is_clear(candidate):
                    return candidate
        return position

    def local_goal(self, position: Vec3, goal: Vec3) -> Vec3:
        """The receding-horizon goal for piece-wise planning."""
        to_goal = goal - position
        distance = to_goal.norm()
        if distance <= self.config.planning_horizon_m:
            return goal
        return position + to_goal * (self.config.planning_horizon_m / distance)

    def planning_bounds(self) -> AABB:
        """The planner's sampling region: world bounds clamped to the flight band."""
        bounds = self.environment.world.bounds
        low, high = self.config.flight_band_m
        return AABB(
            Vec3(bounds.min_corner.x, bounds.min_corner.y, low),
            Vec3(bounds.max_corner.x, bounds.max_corner.y, high),
        )

    # -- subscriptions ---------------------------------------------------
    def _on_decision(self, message: Message[DecisionSample]) -> None:
        self._decision = message.payload

    def _on_flight(self, message: Message[FlightResult]) -> None:
        # Stall recovery: the flight node detected a pinned drone; drop the
        # trajectory so the next decision replans from scratch.
        if message.payload.drop_trajectory:
            self._trajectory = None
            self.publish(
                self.topics.trajectory, TrajectorySample(message.payload.index, None)
            )

    def _on_perception(self, message: Message[PerceptionSample]) -> None:
        sample = message.payload
        if self._decision is None or self._decision.index != sample.index:
            raise RuntimeError("planning received perception without its decision")
        decision = self._decision.decision
        position = sample.position

        replan, _reason = self.should_replan(
            self._trajectory, position, self._decisions_since_plan
        )
        local_goal = self.local_goal(position, self.environment.goal)
        planning = self.operators.run_planning(
            policy=decision.policy,
            start=self.escape_start(position),
            goal=local_goal,
            bounds=self.planning_bounds(),
            replan=replan,
            previous_trajectory=self._trajectory,
            start_time=self.executor.clock.now,
            velocity_cap=decision.velocity_cap,
        )
        replanned = planning.plan is not None
        if replanned:
            self._decisions_since_plan = 0
            if planning.plan is not None and not planning.plan.success:
                self.consecutive_plan_failures += 1
            else:
                self.consecutive_plan_failures = 0
        else:
            self._decisions_since_plan += 1
        trajectory = planning.trajectory

        # Blocked-trajectory safety: if the updated map says the path ahead
        # is blocked, drop the trajectory so the next decision replans.
        if trajectory is not None and self.trajectory_blocked(trajectory, position):
            trajectory = None
        self._trajectory = trajectory

        self.charge_compute(
            self.cost_model.perception_to_planning_latency(planning.work)
            + self.cost_model.planning_latency(planning.work)
            + self.cost_model.smoothing_latency(planning.work)
        )
        self.publish(
            self.topics.trajectory, TrajectorySample(sample.index, trajectory)
        )
        self.publish(
            self.topics.planning,
            PlanningSample(sample.index, planning, trajectory, replanned, position),
        )


class FlightNode(Node):
    """Charges the decision's latency and flies the drone for its duration.

    The last stage of the cascade: it merges the pipeline's work, records the
    canonical latency breakdown (compute stages from the cost model, comm
    stages as :class:`PipelineHop` records anchored to the bus messages),
    then integrates flight for the decision interval with the pure-pursuit
    follower and the emergency brake.
    """

    def __init__(
        self,
        executor: Executor,
        config: "MissionConfig",
        environment: GeneratedEnvironment,
        runtime: "Runtime",
        cost_model: WorkloadCostModel,
        kinematics: QuadrotorKinematics,
        follower: PurePursuitFollower,
        operators: OperatorSet,
        ledger: LatencyLedger,
        cpu: CpuUtilizationTracker,
        traces: List[DecisionTrace],
        *,
        orchestrator: Optional[FaultOrchestrator] = None,
        topics: PipelineTopics = ROOT_TOPICS,
        name: str = "flight",
    ) -> None:
        super().__init__(name, executor)
        self.topics = topics
        self.config = config
        self.environment = environment
        self.runtime = runtime
        self.cost_model = cost_model
        self.kinematics = kinematics
        self.follower = follower
        self.operators = operators
        self.ledger = ledger
        self.cpu = cpu
        self.traces = traces
        self.orchestrator = orchestrator
        self.hops: List[PipelineHop] = []
        self.state = DroneState(
            time=0.0, position=environment.start, velocity=Vec3.zero()
        )
        self.last_result: Optional[FlightResult] = None
        self._profile: Optional[ProfileSample] = None
        self._decision: Optional[DecisionSample] = None
        self._perception: Optional[PerceptionSample] = None
        self._stalled_decisions = 0
        self.subscribe(topics.profile, self._on_profile)
        self.subscribe(topics.decision, self._on_decision)
        self.subscribe(topics.perception, self._on_perception)
        self.subscribe(topics.planning, self._on_planning)

    def _on_profile(self, message: Message[ProfileSample]) -> None:
        self._profile = message.payload

    def _on_decision(self, message: Message[DecisionSample]) -> None:
        self._decision = message.payload

    def _on_perception(self, message: Message[PerceptionSample]) -> None:
        self._perception = message.payload

    def _on_planning(self, message: Message[PlanningSample]) -> None:
        planning = message.payload
        index = planning.index
        if (
            self._profile is None
            or self._decision is None
            or self._perception is None
            or self._decision.index != index
            or self._perception.index != index
        ):
            raise RuntimeError("flight received planning output with stale inputs")
        decision = self._decision.decision
        profile = self._profile.profile
        cfg = self.config

        # Charge compute: the canonical per-stage breakdown of the merged work.
        work = merge_work(self._perception.output.work, planning.output.work)
        stage_latencies = self.cost_model.stage_latencies(
            work, self.runtime.spatial_aware
        )
        # Platform/transport faults land here, after the nominal model and
        # before any accounting, so thermal throttling inflates the compute
        # stages and comm faults show up in the comm_* ledger entries.
        if self.orchestrator is not None and self.orchestrator.enabled:
            stage_latencies = self.orchestrator.apply_stage_latencies(
                index, stage_latencies
            )
        end_to_end = sum(stage_latencies.values())
        self._record_latencies(index, stage_latencies)
        self.cpu.record_decision(index, compute_seconds(stage_latencies))

        zone = self.environment.zone_map.zone_at(self.state.position).name
        self.traces.append(
            DecisionTrace(
                index=index,
                timestamp=self.executor.clock.now,
                position=self.state.position,
                zone=zone,
                speed=self.state.speed,
                velocity_cap=decision.velocity_cap,
                time_budget=decision.time_budget,
                policy=decision.policy.as_dict(),
                stage_latencies=stage_latencies,
                end_to_end_latency=end_to_end,
                visibility=profile.visibility,
                closest_obstacle=profile.closest_obstacle,
                replanned=planning.replanned,
            )
        )

        # Fly for the duration of the decision.
        interval = max(end_to_end, cfg.sensor_period_s)
        state, flown, hit = self._fly(
            self.state, planning.trajectory, decision.velocity_cap, interval
        )

        # Stall detection: a drone pinned by its emergency brake (or a
        # trajectory it cannot make progress on) needs a fresh plan.
        drop_trajectory = False
        if planning.trajectory is not None and flown < 0.05:
            self._stalled_decisions += 1
            if self._stalled_decisions >= 3:
                drop_trajectory = True
                self._stalled_decisions = 0
        else:
            self._stalled_decisions = 0

        self.state = state
        result = FlightResult(
            index=index,
            state=state,
            flown=flown,
            hit=hit,
            interval=interval,
            end_to_end=end_to_end,
            drop_trajectory=drop_trajectory,
        )
        self.last_result = result
        self.publish(self.topics.flight, result)

    # -- latency recording ----------------------------------------------
    def _record_latencies(
        self, decision_index: int, stage_latencies: Dict[str, float]
    ) -> None:
        """Record the breakdown: compute stages directly, comm stages as hops."""
        now = self.executor.clock.now
        hop_topics = self.topics.comm_hop_topics()
        for stage, seconds in stage_latencies.items():
            hop_topic = hop_topics.get(stage)
            if hop_topic is None:
                self.ledger.record(decision_index, stage, seconds, now)
                continue
            message = self.executor.bus.topic(hop_topic).latest
            if message is None:  # pragma: no cover - the cascade always publishes
                raise RuntimeError(f"no message ever crossed hop {stage} ({hop_topic})")
            hop = PipelineHop(
                decision_index=decision_index,
                stage=stage,
                topic=hop_topic,
                message_seq=message.header.seq,
                published_stamp=message.stamp,
                comm_seconds=seconds,
            )
            self.hops.append(hop)
            self.ledger.record(decision_index, stage, hop.comm_seconds, now)

    # -- flight integration ----------------------------------------------
    def _motion_blocked(self, position: Vec3, motion: Vec3) -> bool:
        """True when mapped obstacles lie within a small tube around the motion.

        The probe walks the expected displacement over the brake look-ahead
        horizon and checks a one-voxel-wide neighbourhood laterally, so the
        drone also brakes when it is about to *graze* a mapped obstacle rather
        than only when it would fly squarely into one.
        """
        cfg = self.config
        octree = self.operators.octree
        horizon = motion * cfg.emergency_brake_lookahead_s
        if horizon.norm() < 1e-6:
            return False
        # The drone's own voxel is excluded (include_start=False): map noise
        # can mark the cell the drone currently sits in, and braking on it
        # would pin the drone in place forever.
        return octree.segment_occupied(
            position,
            position + horizon,
            step=octree.vox_min,
            lateral=octree.vox_min,
            include_start=False,
        )

    def _fly(
        self,
        state: DroneState,
        trajectory: Optional[Trajectory],
        velocity_cap: float,
        duration: float,
    ) -> tuple[DroneState, float, bool]:
        """Advance flight for ``duration`` seconds; returns (state, distance, hit)."""
        cfg = self.config
        flown = 0.0
        remaining = duration
        current = state
        while remaining > 1e-9:
            dt = min(cfg.control_dt_s, remaining)
            if trajectory is None:
                command = Vec3.zero()
            else:
                command = self.follower.velocity_command(
                    trajectory, current.position, velocity_cap
                )
                # Emergency brake: if the occupancy map shows an obstacle
                # within a short flight-time horizon of the commanded motion
                # (or of the drone's current momentum), stop instead of
                # continuing at speed.
                if self._motion_blocked(current.position, command) or self._motion_blocked(
                    current.position, current.velocity
                ):
                    command = Vec3.zero()
            next_state = self.kinematics.step(current, command, dt)
            flown += next_state.position.distance_to(current.position)
            current = next_state
            if self.environment.world.is_occupied(
                current.position, margin=cfg.collision_margin_m
            ):
                return current, flown, True
            remaining -= dt
        return current, flown, False


# ----------------------------------------------------------------------
# The wired graph
# ----------------------------------------------------------------------
class DecisionPipeline:
    """The six pipeline nodes wired over one bus, driven one decision at a time.

    The pipeline owns the run-scoped accounting (clock, ledger, CPU tracker,
    traces) and exposes :meth:`step` — publish one sensor tick and drain the
    executor until the cascade completes.  The mission façade owns mission-
    level policy: termination, distance integration and metric assembly.
    """

    def __init__(
        self,
        environment: GeneratedEnvironment,
        runtime: "Runtime",
        config: "MissionConfig",
        cost_model: WorkloadCostModel,
        kinematics: QuadrotorKinematics,
        profilers: ProfilerSuite,
        operators: OperatorSet,
        rig: CameraRig,
        sensors: StateSensorSuite,
        follower: PurePursuitFollower,
        faults: Optional[FaultSet] = None,
        *,
        namespace: Optional[TopicNamespace] = None,
        executor: Optional[Executor] = None,
        drone_id: int = 0,
    ) -> None:
        self.environment = environment
        self.namespace = namespace or TopicNamespace()
        self.drone_id = drone_id
        if executor is None:
            # Stand-alone (single-drone) pipeline: owns its clock and bus.
            self.clock = SimClock()
            self.bus = TopicBus()
            self.executor = Executor(self.bus, self.clock, record_dispatch=True)
        else:
            # Fleet member: N pipelines share one clock/bus/executor, each
            # publishing inside its own topic namespace.
            self.executor = executor
            self.bus = executor.bus
            self.clock = executor.clock
        self.topics = PipelineTopics.for_namespace(self.namespace)
        self.ledger = LatencyLedger()
        self.cpu = CpuUtilizationTracker(sensor_period_s=config.sensor_period_s)
        self.traces: List[DecisionTrace] = []
        self.faults = faults or FaultSet()
        # One orchestrator per pipeline: schedule jitter resolves against the
        # mission seed, so serial and pooled campaign runs agree.
        self.orchestrator = FaultOrchestrator(
            self.faults, seed=getattr(config, "rng_seed", 0)
        )

        topics = self.topics
        ns = self.namespace
        self.sense = SenseNode(
            self.executor,
            rig,
            sensors,
            environment,
            faults,
            octree=operators.octree,
            orchestrator=self.orchestrator,
            topics=topics,
            name=ns.node("sense"),
        )
        self.profile = ProfileNode(
            self.executor,
            profilers,
            operators,
            rig_max_volume=rig.max_sensor_volume(),
            goal=environment.goal,
            topics=topics,
            name=ns.node("profile"),
        )
        self.governor = GovernorNode(
            self.executor,
            runtime,
            cost_model,
            orchestrator=self.orchestrator,
            topics=topics,
            name=ns.node("governor"),
        )
        self.perception = PerceptionNode(
            self.executor, operators, cost_model, topics=topics,
            name=ns.node("perception"),
        )
        self.planning = PlanningNode(
            self.executor, operators, config, environment, cost_model,
            topics=topics, name=ns.node("planning"),
        )
        self.flight = FlightNode(
            self.executor,
            config,
            environment,
            runtime,
            cost_model,
            kinematics,
            follower,
            operators,
            self.ledger,
            self.cpu,
            self.traces,
            orchestrator=self.orchestrator,
            topics=topics,
            name=ns.node("flight"),
        )
        self.nodes = (
            self.sense,
            self.profile,
            self.governor,
            self.perception,
            self.planning,
            self.flight,
        )
        # Passive step observers (repro.obs taps).  Empty by default, so an
        # uninstrumented mission pays only two truthiness checks per decision.
        self.observers: List[Any] = []

    def add_tap(self, tap, energy_model=None) -> None:
        """Attach a passive observer (e.g. a trace recorder) to the graph.

        A tap is anything with an ``attach(pipeline, energy_model=None)``
        method; it subscribes to the bus topics as an ordinary subscriber and
        must not publish.  Missions without taps carry no tracing overhead —
        nothing is subscribed, so there is nothing to skip.
        """
        tap.attach(self, energy_model=energy_model)

    def step(self, decision_index: int) -> FlightResult:
        """Run one full decision cascade through the graph."""
        self.flight.last_result = None
        if self.observers:
            for observer in self.observers:
                observer.on_decision_start(self, decision_index)
        self.sense.tick(decision_index)
        self.executor.spin()
        result = self.flight.last_result
        if result is None or result.index != decision_index:
            raise RuntimeError(
                f"decision {decision_index} did not complete its cascade"
            )
        if self.observers:
            for observer in self.observers:
                observer.on_decision_end(self, decision_index, result)
        return result

    @property
    def hops(self) -> List[PipelineHop]:
        """Every comm hop record produced so far, in decision order."""
        return list(self.flight.hops)

    def node_compute_seconds(self) -> Dict[str, float]:
        """Compute seconds charged per node (the Figure 7 CPU attribution)."""
        return {node.name: node.compute_seconds for node in self.nodes}

    def dispatch_log(self) -> List[tuple[str, str]]:
        """(topic, frame) per delivered callback — the determinism witness."""
        return self.executor.dispatch_log
