"""Fault injections for scenario specs.

Real deployments lose sensor frames and fly with degraded cameras; the
scenario layer injects both so campaigns can measure how gracefully each
runtime design degrades.  Faults act at the :class:`~repro.simulation.
pipeline.SenseNode` boundary — the rest of the pipeline sees ordinary (if
impoverished) messages, exactly as a real pipeline would.

Two fault classes are supported:

* :class:`SensorDropout` — every n-th decision the camera rig produces no
  frames at all; the pipeline runs on an empty scan (no new obstacle points,
  full nominal visibility), so the map goes stale until the next good frame.
* :class:`CameraDegradation` — from a given decision onward the rig captures
  at a reduced resolution, modelling a damaged or thermally throttled sensor.

All fault classes serialise to plain dictionaries so that
:class:`~repro.simulation.scenario.ScenarioSpec` round-trips through JSON and
crosses process boundaries in a campaign pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True, slots=True)
class SensorDropout:
    """Periodic total loss of a sensor frame.

    Attributes:
        every_n: one decision out of every ``every_n`` loses its frame (the
            last of each group, so the mission always starts on a good frame).
        start_decision: decisions before this index never drop.
    """

    every_n: int
    start_decision: int = 0

    def __post_init__(self) -> None:
        if self.every_n < 2:
            raise ValueError("dropout every_n must be at least 2")
        if self.start_decision < 0:
            raise ValueError("start_decision cannot be negative")

    def drops(self, decision_index: int) -> bool:
        """True when the given decision's sensor frame is lost."""
        if decision_index < self.start_decision:
            return False
        return (decision_index - self.start_decision) % self.every_n == self.every_n - 1

    def to_dict(self) -> Dict[str, Any]:
        return {"every_n": self.every_n, "start_decision": self.start_decision}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SensorDropout":
        return cls(
            every_n=int(data["every_n"]),
            start_decision=int(data.get("start_decision", 0)),
        )


@dataclass(frozen=True, slots=True)
class CameraDegradation:
    """Permanent resolution loss from a given decision onward.

    Attributes:
        width / height: per-camera capture resolution after the fault
            strikes, pixels.
        after_decision: first decision index captured at the reduced
            resolution.
    """

    width: int
    height: int
    after_decision: int = 0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("degraded resolution must be at least 1x1")
        if self.after_decision < 0:
            raise ValueError("after_decision cannot be negative")

    def active(self, decision_index: int) -> bool:
        """True when captures at this decision use the degraded resolution."""
        return decision_index >= self.after_decision

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "height": self.height,
            "after_decision": self.after_decision,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CameraDegradation":
        return cls(
            width=int(data["width"]),
            height=int(data["height"]),
            after_decision=int(data.get("after_decision", 0)),
        )


@dataclass(frozen=True, slots=True)
class FaultSet:
    """The faults injected into one scenario (both optional)."""

    sensor_dropout: Optional[SensorDropout] = None
    camera_degradation: Optional[CameraDegradation] = None

    def active(self) -> bool:
        """True when at least one fault is configured."""
        return self.sensor_dropout is not None or self.camera_degradation is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sensor_dropout": self.sensor_dropout.to_dict() if self.sensor_dropout else None,
            "camera_degradation": (
                self.camera_degradation.to_dict() if self.camera_degradation else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "FaultSet":
        if not data:
            return cls()
        dropout = data.get("sensor_dropout")
        degradation = data.get("camera_degradation")
        return cls(
            sensor_dropout=SensorDropout.from_dict(dropout) if dropout else None,
            camera_degradation=(
                CameraDegradation.from_dict(degradation) if degradation else None
            ),
        )
