"""The fault library: registered fault classes + the sets scenarios inject.

The paper's core claim is that a compute-aware governor degrades more
gracefully than a static baseline when the environment or the platform
misbehaves.  This module is the robustness axis of that claim: an *open
registry* of fault classes (mirroring :func:`repro.worlds.register_archetype`)
whose instances act at their natural pipeline layer:

* :class:`SensorDropout` / :class:`CameraDegradation` — the sense boundary:
  lost frames and reduced capture resolution (the original two faults).
* :class:`CommsDropout` / :class:`CommsLatencySpike` — the pipeline hops:
  messages dropped (and retransmitted) or delayed on the TopicBus between
  nodes, visible in the ``comm_*`` ledger entries.
* :class:`PowerBrownout` — the compute platform: the per-decision time
  budget fed to the governor/solver shrinks (DVFS under a sagging supply).
* :class:`ThermalThrottle` — the compute platform: the charged compute
  latencies ramp up the longer the fault is active (a heat-soaked SoC).
* :class:`StuckMover` — the world: a dynamic obstacle freezes mid-route.

Timing: the legacy :class:`FaultSet` fields (``sensor_dropout`` /
``camera_degradation``) keep their original always-on semantics, while
:class:`FaultSchedule` entries give any registered fault a timed window —
activate at decision ``k``, clear at decision ``m``, optionally jittered by
a seeded offset.  The schedule is *data*; the engine that resolves jitter
and answers per-decision queries is
:class:`repro.simulation.orchestrator.FaultOrchestrator`.

Every fault class serialises to a plain dictionary so that
:class:`~repro.simulation.scenario.ScenarioSpec` round-trips through JSON
and crosses process boundaries in a campaign pool; unknown fault names and
unknown parameters raise a :class:`ValueError` naming what *is* registered,
so a typo'd grid JSON fails loudly instead of running fault-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.middleware.latency import COMM_STAGES

__all__ = [
    "CameraDegradation",
    "CommsDropout",
    "CommsLatencySpike",
    "Fault",
    "FaultSchedule",
    "FaultSet",
    "PowerBrownout",
    "SensorDropout",
    "StuckMover",
    "ThermalThrottle",
    "fault_names",
    "get_fault",
    "is_registered_fault",
    "register_fault",
]


# ----------------------------------------------------------------------
# The registry (mirrors repro.worlds.registry.register_archetype)
# ----------------------------------------------------------------------
_FAULTS: Dict[str, Type["Fault"]] = {}


def register_fault(name: str) -> Callable[[Type["Fault"]], Type["Fault"]]:
    """Decorator registering a fault class under ``name``.

    The class gains a ``fault_name`` attribute (the registry key used in
    serialised :class:`FaultSchedule` entries) and becomes sweepable by name
    from grid files.

    Raises:
        ValueError: when the name is empty or already registered.
    """
    if not name:
        raise ValueError("fault name must be non-empty")

    def decorator(fault_cls: Type["Fault"]) -> Type["Fault"]:
        if name in _FAULTS:
            raise ValueError(f"fault {name!r} is already registered")
        fault_cls.fault_name = name
        _FAULTS[name] = fault_cls
        return fault_cls

    return decorator


def fault_names() -> List[str]:
    """Registered fault names, sorted."""
    return sorted(_FAULTS)


def is_registered_fault(name: str) -> bool:
    """True when a fault class exists under ``name``."""
    return name in _FAULTS


def get_fault(name: str) -> Type["Fault"]:
    """Look a fault class up by name.

    Raises:
        KeyError: with the known names, when the fault is unknown.
    """
    try:
        return _FAULTS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r}; registered: {fault_names()}"
        ) from None


def _check_keys(data: Dict[str, Any], allowed: Tuple[str, ...], context: str) -> None:
    """Reject unknown dictionary keys with a message naming what is valid."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown {context} key(s) {unknown}; expected a subset of "
            f"{sorted(allowed)}"
        )


# ----------------------------------------------------------------------
# The fault interface
# ----------------------------------------------------------------------
class Fault:
    """Base class / protocol of every registered fault.

    A fault is a frozen, JSON-serialisable value plus a set of *effect
    hooks* the :class:`~repro.simulation.orchestrator.FaultOrchestrator`
    consults each decision while the fault's window is active.  The base
    class implements every hook as a neutral no-op; subclasses override the
    hooks of the layer they act at, so a new fault class only has to say
    what it changes.  Hook arguments: ``index`` is the absolute decision
    index, ``active_for`` the number of decisions since the fault's window
    opened (0 on the activation decision).
    """

    #: Registry key, stamped by :func:`register_fault`.
    fault_name: str = ""

    # -- effect hooks (neutral defaults) --------------------------------
    def sensor_dropped(self, index: int, active_for: int) -> bool:
        """True when this decision's sensor frame is lost."""
        return False

    def camera_resolution(self, index: int, active_for: int) -> Optional[Tuple[int, int]]:
        """(width, height) the rig must capture at, or ``None`` for nominal."""
        return None

    def budget_scale(self, index: int, active_for: int) -> float:
        """Multiplier on the decision time budget fed to the governor/solver."""
        return 1.0

    def compute_factor(self, index: int, active_for: int) -> float:
        """Multiplier on every charged compute-stage latency."""
        return 1.0

    def comm_seconds(
        self, stage: str, seconds: float, index: int, active_for: int
    ) -> float:
        """The adjusted latency of one ``comm_*`` hop (seconds in, seconds out)."""
        return seconds

    def freezes_mover(self, mover_name: str) -> bool:
        """True when this fault pins the named dynamic obstacle in place."""
        return False

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - subclasses override
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# Sense-boundary faults (the original two, now registered)
# ----------------------------------------------------------------------
@register_fault("sensor_dropout")
@dataclass(frozen=True, slots=True)
class SensorDropout(Fault):
    """Periodic total loss of a sensor frame.

    Attributes:
        every_n: one decision out of every ``every_n`` loses its frame (the
            last of each group, so the mission always starts on a good frame).
        start_decision: decisions before this index never drop.
    """

    every_n: int
    start_decision: int = 0

    def __post_init__(self) -> None:
        if self.every_n < 2:
            raise ValueError("dropout every_n must be at least 2")
        if self.start_decision < 0:
            raise ValueError("start_decision cannot be negative")

    def drops(self, decision_index: int) -> bool:
        """True when the given decision's sensor frame is lost."""
        if decision_index < self.start_decision:
            return False
        return (decision_index - self.start_decision) % self.every_n == self.every_n - 1

    def sensor_dropped(self, index: int, active_for: int) -> bool:
        return self.drops(index)

    def to_dict(self) -> Dict[str, Any]:
        return {"every_n": self.every_n, "start_decision": self.start_decision}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SensorDropout":
        _check_keys(data, ("every_n", "start_decision"), "sensor_dropout")
        return cls(
            every_n=int(data["every_n"]),
            start_decision=int(data.get("start_decision", 0)),
        )


@register_fault("camera_degradation")
@dataclass(frozen=True, slots=True)
class CameraDegradation(Fault):
    """Permanent resolution loss from a given decision onward.

    Attributes:
        width / height: per-camera capture resolution after the fault
            strikes, pixels.
        after_decision: first decision index captured at the reduced
            resolution.
    """

    width: int
    height: int
    after_decision: int = 0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("degraded resolution must be at least 1x1")
        if self.after_decision < 0:
            raise ValueError("after_decision cannot be negative")

    def active(self, decision_index: int) -> bool:
        """True when captures at this decision use the degraded resolution."""
        return decision_index >= self.after_decision

    def camera_resolution(self, index: int, active_for: int) -> Optional[Tuple[int, int]]:
        return (self.width, self.height) if self.active(index) else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "height": self.height,
            "after_decision": self.after_decision,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CameraDegradation":
        _check_keys(data, ("width", "height", "after_decision"), "camera_degradation")
        return cls(
            width=int(data["width"]),
            height=int(data["height"]),
            after_decision=int(data.get("after_decision", 0)),
        )


# ----------------------------------------------------------------------
# Pipeline-hop faults (the comm_* ledger entries)
# ----------------------------------------------------------------------
#: Valid hop selectors for the comm faults: one canonical stage, or all four.
COMM_HOPS: Tuple[str, ...] = tuple(COMM_STAGES) + ("all",)


@register_fault("comms_dropout")
@dataclass(frozen=True, slots=True)
class CommsDropout(Fault):
    """A bus hop loses its message and pays a retransmission.

    The cascade itself always completes — the middleware retransmits after a
    timeout, exactly as a lossy ROS transport would — so the fault shows up
    as extra latency on the affected ``comm_*`` hop(s), inflating the
    decision's end-to-end latency (and therefore the flight interval and
    deadline-miss accounting).

    Attributes:
        hop: the comm stage hit (``"comm_point_cloud"``, ``"comm_octomap"``,
            ``"comm_planning"``, ``"comm_control"``) or ``"all"``.
        every_n: one decision out of every ``every_n`` active decisions
            loses the hop's message (1 = every active decision, starting at
            activation).
        retransmit_s: the retransmission timeout added to the hop's latency
            when the message is lost, seconds.
    """

    hop: str = "all"
    every_n: int = 1
    retransmit_s: float = 0.05

    def __post_init__(self) -> None:
        if self.hop not in COMM_HOPS:
            raise ValueError(
                f"unknown comm hop {self.hop!r}; expected one of {list(COMM_HOPS)}"
            )
        if self.every_n < 1:
            raise ValueError("comms dropout every_n must be at least 1")
        if self.retransmit_s <= 0:
            raise ValueError("retransmit_s must be positive seconds")

    def _hits(self, stage: str, active_for: int) -> bool:
        if self.hop != "all" and stage != self.hop:
            return False
        return active_for % self.every_n == 0

    def comm_seconds(
        self, stage: str, seconds: float, index: int, active_for: int
    ) -> float:
        if self._hits(stage, active_for):
            return seconds + self.retransmit_s
        return seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hop": self.hop,
            "every_n": self.every_n,
            "retransmit_s": self.retransmit_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CommsDropout":
        _check_keys(data, ("hop", "every_n", "retransmit_s"), "comms_dropout")
        return cls(
            hop=str(data.get("hop", "all")),
            every_n=int(data.get("every_n", 1)),
            retransmit_s=float(data.get("retransmit_s", 0.05)),
        )


@register_fault("comms_latency_spike")
@dataclass(frozen=True, slots=True)
class CommsLatencySpike(Fault):
    """A congested transport multiplies a hop's serialisation latency.

    Attributes:
        factor: multiplier applied to the hop's ``comm_*`` latency while the
            fault is active; must exceed 1 (1 would be a no-op).
        hop: the comm stage hit, or ``"all"`` (see :data:`COMM_HOPS`).
    """

    factor: float = 4.0
    hop: str = "all"

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("latency spike factor must exceed 1")
        if self.hop not in COMM_HOPS:
            raise ValueError(
                f"unknown comm hop {self.hop!r}; expected one of {list(COMM_HOPS)}"
            )

    def comm_seconds(
        self, stage: str, seconds: float, index: int, active_for: int
    ) -> float:
        if self.hop == "all" or stage == self.hop:
            return seconds * self.factor
        return seconds

    def to_dict(self) -> Dict[str, Any]:
        return {"factor": self.factor, "hop": self.hop}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CommsLatencySpike":
        _check_keys(data, ("factor", "hop"), "comms_latency_spike")
        return cls(
            factor=float(data.get("factor", 4.0)),
            hop=str(data.get("hop", "all")),
        )


# ----------------------------------------------------------------------
# Compute-platform faults (budget and latency model)
# ----------------------------------------------------------------------
@register_fault("power_brownout")
@dataclass(frozen=True, slots=True)
class PowerBrownout(Fault):
    """A sagging supply shrinks the per-decision compute budget.

    The platform's power manager clamps the deadline it grants the decision
    pipeline; the governor re-solves its knobs against the smaller budget
    (coarser maps, different velocity cap) while the static baseline keeps
    its design-time knobs and simply violates the shrunken deadline — the
    graceful-degradation differential the fault-robustness table measures.

    Attributes:
        scale: multiplier on the decision time budget fed to the
            governor/solver, dimensionless in (0, 1).
    """

    scale: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.scale < 1.0:
            raise ValueError("brownout scale must lie strictly between 0 and 1")

    def budget_scale(self, index: int, active_for: int) -> float:
        return self.scale

    def to_dict(self) -> Dict[str, Any]:
        return {"scale": self.scale}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PowerBrownout":
        _check_keys(data, ("scale",), "power_brownout")
        return cls(scale=float(data.get("scale", 0.5)))


@register_fault("thermal_throttle")
@dataclass(frozen=True, slots=True)
class ThermalThrottle(Fault):
    """A heat-soaked SoC: charged compute latencies ramp up over time.

    Every compute stage's charged latency is multiplied by
    ``min(1 + ramp_per_decision * active_for, max_factor)`` — the factor
    grows the longer the window stays open, capped at the thermal limit.

    Attributes:
        ramp_per_decision: slowdown added per active decision
            (dimensionless per decision; 0.05 = +5%/decision).
        max_factor: the throttle ceiling (>= 1).
    """

    ramp_per_decision: float = 0.05
    max_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.ramp_per_decision <= 0:
            raise ValueError("thermal ramp_per_decision must be positive")
        if self.max_factor < 1.0:
            raise ValueError("thermal max_factor must be at least 1")

    def compute_factor(self, index: int, active_for: int) -> float:
        return min(1.0 + self.ramp_per_decision * active_for, self.max_factor)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ramp_per_decision": self.ramp_per_decision,
            "max_factor": self.max_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ThermalThrottle":
        _check_keys(data, ("ramp_per_decision", "max_factor"), "thermal_throttle")
        return cls(
            ramp_per_decision=float(data.get("ramp_per_decision", 0.05)),
            max_factor=float(data.get("max_factor", 2.0)),
        )


# ----------------------------------------------------------------------
# World faults (dynamic obstacles)
# ----------------------------------------------------------------------
@register_fault("stuck_mover")
@dataclass(frozen=True, slots=True)
class StuckMover(Fault):
    """A dynamic obstacle freezes mid-route (a broken-down forklift).

    While the fault's window is active, matching movers hold the position
    they had at the activation decision instead of following their analytic
    route; when the window clears they resume their exact kinematic
    schedule (``position_at(epoch)``), as if towed back on course.

    Attributes:
        mover: which movers freeze — ``"*"`` for all, otherwise an exact
            mover name or a name prefix (instantiated movers are suffixed
            ``_<index>``, so a spec-level name matches all its instances).
    """

    mover: str = "*"

    def __post_init__(self) -> None:
        if not self.mover:
            raise ValueError("stuck mover pattern must be non-empty ('*' for all)")

    def freezes_mover(self, mover_name: str) -> bool:
        return (
            self.mover == "*"
            or mover_name == self.mover
            or mover_name.startswith(self.mover)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"mover": self.mover}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StuckMover":
        _check_keys(data, ("mover",), "stuck_mover")
        return cls(mover=str(data.get("mover", "*")))


# ----------------------------------------------------------------------
# Timed windows
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """One fault bound to a timed activation/recovery window.

    The window is half-open over decision indices: the fault is active from
    ``activate_at`` (inclusive) to ``clear_at`` (exclusive); ``clear_at
    = None`` means the fault never recovers.  ``jitter`` shifts both bounds
    by independent seeded offsets drawn from ``[-jitter, +jitter]`` when the
    schedule is resolved against the mission seed, so a campaign can sweep
    *when* a fault strikes without hand-placing every window — and resolve
    identically in every worker process.

    Attributes:
        fault: a registered fault instance.
        activate_at: first active decision index (>= 0).
        clear_at: first decision index after recovery, or ``None`` for no
            recovery; must exceed ``activate_at``.
        jitter: maximum seeded shift of each bound, decisions (>= 0).
    """

    fault: Fault
    activate_at: int = 0
    clear_at: Optional[int] = None
    jitter: int = 0

    def __post_init__(self) -> None:
        name = getattr(type(self.fault), "fault_name", "")
        if not name or not is_registered_fault(name):
            raise ValueError(
                f"fault {type(self.fault).__name__} is not registered; "
                f"registered: {fault_names()}"
            )
        if self.activate_at < 0:
            raise ValueError("activate_at cannot be negative")
        if self.clear_at is not None and self.clear_at <= self.activate_at:
            raise ValueError("clear_at must exceed activate_at")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")

    def resolve(self, seed: int, ordinal: int) -> Tuple[int, Optional[int]]:
        """The (start, end) window for one mission, jitter applied.

        Deterministic in ``(seed, ordinal, fault name)``: the RNG is seeded
        from a string, which Python hashes with SHA-512 regardless of
        ``PYTHONHASHSEED``, so serial and multiprocessing campaign runs
        resolve identical windows.
        """
        if self.jitter == 0:
            return self.activate_at, self.clear_at
        rng = random.Random(
            f"fault-window:{seed}:{ordinal}:{type(self.fault).fault_name}"
        )
        start = max(0, self.activate_at + rng.randint(-self.jitter, self.jitter))
        if self.clear_at is None:
            return start, None
        end = max(start + 1, self.clear_at + rng.randint(-self.jitter, self.jitter))
        return start, end

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault": type(self.fault).fault_name,
            "params": self.fault.to_dict(),
            "activate_at": self.activate_at,
            "clear_at": self.clear_at,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        _check_keys(
            data, ("fault", "params", "activate_at", "clear_at", "jitter"), "schedule"
        )
        name = data.get("fault")
        if not name or not is_registered_fault(str(name)):
            raise ValueError(
                f"unknown fault {name!r} in schedule; registered: {fault_names()}"
            )
        fault_cls = get_fault(str(name))
        clear_at = data.get("clear_at")
        return cls(
            fault=fault_cls.from_dict(dict(data.get("params") or {})),
            activate_at=int(data.get("activate_at", 0)),
            clear_at=int(clear_at) if clear_at is not None else None,
            jitter=int(data.get("jitter", 0)),
        )


# ----------------------------------------------------------------------
# The per-scenario fault set
# ----------------------------------------------------------------------
#: FaultSet's serialised vocabulary: the two legacy always-on fields plus
#: the timed schedule.  Anything else in a "faults" dictionary is a typo.
FAULT_SET_KEYS: Tuple[str, ...] = ("sensor_dropout", "camera_degradation", "schedule")


@dataclass(frozen=True, slots=True)
class FaultSet:
    """The faults injected into one scenario.

    The two legacy fields keep their original always-on semantics (their
    own ``start_decision`` / ``after_decision`` knobs aside); ``schedule``
    holds any registered fault inside a timed
    :class:`FaultSchedule` window.  An empty set is the no-fault default
    and serialises exactly as it did before the schedule existed, which is
    what keeps no-fault campaign traces byte-identical across versions.
    """

    sensor_dropout: Optional[SensorDropout] = None
    camera_degradation: Optional[CameraDegradation] = None
    schedule: Tuple[FaultSchedule, ...] = ()

    def __post_init__(self) -> None:
        # Normalise JSON lists to tuples so sets compare equal across
        # serialisation round-trips.
        object.__setattr__(self, "schedule", tuple(self.schedule))

    def active(self) -> bool:
        """True when at least one fault is configured."""
        return (
            self.sensor_dropout is not None
            or self.camera_degradation is not None
            or bool(self.schedule)
        )

    def fault_names_used(self) -> List[str]:
        """Sorted unique registry names of every configured fault."""
        names = set()
        if self.sensor_dropout is not None:
            names.add(SensorDropout.fault_name)
        if self.camera_degradation is not None:
            names.add(CameraDegradation.fault_name)
        for entry in self.schedule:
            names.add(type(entry.fault).fault_name)
        return sorted(names)

    def label(self) -> str:
        """Human-readable tag for grouping missions (``"none"`` when empty)."""
        names = self.fault_names_used()
        return "+".join(names) if names else "none"

    def to_dict(self) -> Dict[str, Any]:
        # The "schedule" key is omitted when empty so that pre-schedule
        # fault sets (including the no-fault default stamped into every
        # trace's spec) serialise byte-identically to older versions.
        data: Dict[str, Any] = {
            "sensor_dropout": self.sensor_dropout.to_dict() if self.sensor_dropout else None,
            "camera_degradation": (
                self.camera_degradation.to_dict() if self.camera_degradation else None
            ),
        }
        if self.schedule:
            data["schedule"] = [entry.to_dict() for entry in self.schedule]
        return data

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "FaultSet":
        if not data:
            return cls()
        unknown = sorted(set(data) - set(FAULT_SET_KEYS))
        if unknown:
            raise ValueError(
                f"unknown fault name(s) {unknown} in fault set; registered "
                f"faults: {fault_names()} (legacy keys "
                f"{list(FAULT_SET_KEYS[:2])} plus 'schedule' entries)"
            )
        dropout = data.get("sensor_dropout")
        degradation = data.get("camera_degradation")
        return cls(
            sensor_dropout=SensorDropout.from_dict(dropout) if dropout else None,
            camera_degradation=(
                CameraDegradation.from_dict(degradation) if degradation else None
            ),
            schedule=tuple(
                FaultSchedule.from_dict(dict(entry))
                for entry in data.get("schedule") or ()
            ),
        )
