"""Simulated time.

All latency, deadline and mission-time accounting in the reproduction is
charged against a simulated clock rather than wall-clock time.  This keeps
the experiments deterministic and lets the compute-cost model (the substitute
for the paper's Intel i9 measurements) advance time by exactly the latency it
predicts for each kernel invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


class SimClock:
    """A monotonically non-decreasing simulated clock.

    Time is advanced explicitly by the simulation loop (flight time) and by
    the compute model (processing latency).  Callbacks can be scheduled to
    fire when the clock passes a given timestamp; the mission simulator uses
    this for sensor sampling rates and watchdog timers.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start at a negative time")
        self._now = float(start)
        self._timers: List[Tuple[float, int, Callable[[float], None]]] = []
        self._timer_seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and fire any due timers.

        Args:
            dt: non-negative time increment.

        Returns:
            The new current time.
        """
        if dt < 0:
            raise ValueError(f"cannot advance the clock by a negative amount ({dt})")
        target = self._now + dt
        self._run_timers_until(target)
        self._now = target
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute timestamp (no-op if in the past)."""
        if timestamp <= self._now:
            return self._now
        return self.advance(timestamp - self._now)

    def schedule_at(self, timestamp: float, callback: Callable[[float], None]) -> None:
        """Register a callback fired the first time the clock reaches ``timestamp``.

        The callback receives the firing time.  Timers scheduled for a time
        already in the past fire on the next ``advance`` call.
        """
        self._timer_seq += 1
        self._timers.append((timestamp, self._timer_seq, callback))
        self._timers.sort(key=lambda item: (item[0], item[1]))

    def schedule_after(self, delay: float, callback: Callable[[float], None]) -> None:
        """Register a callback fired ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self.schedule_at(self._now + delay, callback)

    def _run_timers_until(self, target: float) -> None:
        while self._timers and self._timers[0][0] <= target:
            timestamp, _, callback = self._timers.pop(0)
            # The clock logically sits at the timer's timestamp while it fires.
            self._now = max(self._now, timestamp)
            callback(self._now)


@dataclass
class Stopwatch:
    """Accumulates named durations against a :class:`SimClock`.

    Used by the mission simulator to split total mission time into flight
    time, hover time (waiting for compute) and per-stage processing time.
    """

    clock: SimClock
    totals: dict = field(default_factory=dict)

    def charge(self, label: str, duration: float) -> None:
        """Add ``duration`` seconds to the bucket ``label`` and advance the clock."""
        if duration < 0:
            raise ValueError("cannot charge a negative duration")
        self.totals[label] = self.totals.get(label, 0.0) + duration
        self.clock.advance(duration)

    def total(self, label: str) -> float:
        """Total seconds charged to a bucket (0 when the bucket is empty)."""
        return self.totals.get(label, 0.0)

    def grand_total(self) -> float:
        """Sum of every bucket."""
        return sum(self.totals.values())
