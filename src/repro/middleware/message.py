"""Message types carried on the middleware bus.

Messages mirror ROS messages at the level RoboRun cares about: a header with
a timestamp, a sequence number and the name of the publishing node, plus an
arbitrary typed payload.  The governor's profilers read header timestamps to
measure stage-to-stage communication latency (the "comm" components of the
Figure 11 breakdown).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

PayloadT = TypeVar("PayloadT")

_sequence_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Header:
    """Metadata attached to every message.

    Attributes:
        stamp: simulated time at which the payload was produced.
        frame_id: name of the producing node (used for breakdown attribution).
        seq: globally unique, monotonically increasing sequence number.
    """

    stamp: float
    frame_id: str
    seq: int = field(default_factory=lambda: next(_sequence_counter))


@dataclass(frozen=True, slots=True)
class Message(Generic[PayloadT]):
    """A header plus an arbitrary payload.

    Payloads are treated as immutable by convention: the bus hands the same
    object to every subscriber, so mutating a received payload would leak
    state across pipeline stages.
    """

    header: Header
    payload: PayloadT

    @staticmethod
    def create(payload: Any, stamp: float, frame_id: str) -> "Message[Any]":
        """Convenience constructor building the header inline."""
        return Message(Header(stamp=stamp, frame_id=frame_id), payload)

    @property
    def stamp(self) -> float:
        """Shortcut for ``header.stamp``."""
        return self.header.stamp

    def age(self, now: float) -> float:
        """Seconds elapsed between production and ``now`` (never negative)."""
        return max(0.0, now - self.header.stamp)
