"""Nodes: named participants on the middleware bus.

A node corresponds to one ROS node in the paper's stack — the point-cloud
kernel, OctoMap, the planner, the smoother, the controller and the RoboRun
governor are each hosted in a node.  Nodes publish and subscribe through the
executor and record how much compute time they have been charged, which feeds
the CPU-utilisation metric of Figure 7.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.middleware.executor import Executor
from repro.middleware.message import Message


class Node:
    """A named publisher/subscriber with per-node compute accounting."""

    def __init__(self, name: str, executor: Executor) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self.executor = executor
        self._compute_seconds = 0.0
        self._publish_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Pub/sub
    # ------------------------------------------------------------------
    def publish(self, topic_name: str, payload: Any) -> Message[Any]:
        """Publish a payload on a topic, stamped with this node's name."""
        self._publish_counts[topic_name] = self._publish_counts.get(topic_name, 0) + 1
        return self.executor.publish(topic_name, payload, frame_id=self.name)

    def subscribe(
        self, topic_name: str, callback: Callable[[Message[Any]], None]
    ) -> None:
        """Subscribe a callback to a topic."""
        self.executor.subscribe(topic_name, callback)

    def latest(self, topic_name: str) -> Optional[Message[Any]]:
        """The most recent message on a topic, or ``None`` if nothing published."""
        if topic_name not in self.executor.bus:
            return None
        return self.executor.bus.topic(topic_name).latest

    # ------------------------------------------------------------------
    # Compute accounting
    # ------------------------------------------------------------------
    def charge_compute(self, seconds: float) -> None:
        """Record ``seconds`` of compute attributed to this node.

        The mission simulator calls this with the latency predicted by the
        compute model each time the node's kernel runs; the totals feed the
        CPU-utilisation metric.
        """
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self._compute_seconds += seconds

    @property
    def compute_seconds(self) -> float:
        """Total compute seconds charged to this node."""
        return self._compute_seconds

    def publish_count(self, topic_name: str) -> int:
        """Messages this node has published on the given topic."""
        return self._publish_counts.get(topic_name, 0)

    def __repr__(self) -> str:
        return f"Node(name={self.name!r}, compute={self._compute_seconds:.3f}s)"
