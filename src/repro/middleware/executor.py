"""Deterministic callback executor.

The executor plays the role of ROS's spinner: it owns the queue of pending
subscriber callbacks and dispatches them in FIFO order.  Because the whole
reproduction is single-process and driven by a simulated clock, a simple
run-to-completion executor is sufficient and makes every experiment exactly
repeatable.

Observability hooks into dispatch through :meth:`Executor.add_observer`:
an observer sees every delivery (before and after the callback runs) but
cannot publish, reorder or mutate messages, so attaching one never changes
the dispatch log — the determinism witness stays byte-identical whether or
not anyone is watching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Tuple

from repro.middleware.clock import SimClock
from repro.middleware.message import Message
from repro.middleware.topic import SubscriberCallback, Topic, TopicBus


@dataclass(frozen=True, slots=True)
class _PendingDispatch:
    """A callback waiting to be delivered with its message."""

    topic_name: str
    callback: SubscriberCallback
    message: Message[Any]


@dataclass(frozen=True, slots=True)
class DispatchRecord:
    """One delivered callback, in typed form.

    The raw ``dispatch_log`` stays a ``List[Tuple[str, str]]`` because its
    JSON serialisation is pinned by SHA-256 goldens; this record is the
    ergonomic view for new code (obs taps, tests, analysis).
    """

    topic: str
    frame_id: str

    @property
    def drone_id(self) -> str:
        """The drone namespace of the topic, or "" for un-namespaced topics."""
        parts = self.topic.split("/")
        if len(parts) >= 3 and parts[1] == "drone":
            return parts[2]
        return ""


class Executor:
    """Owns publication and dispatch over a :class:`TopicBus`.

    Nodes publish through the executor rather than directly on topics so that
    dispatch ordering, re-entrancy (a callback publishing another message) and
    the processed-message count are centralised.
    """

    def __init__(
        self, bus: TopicBus, clock: SimClock, record_dispatch: bool = False
    ) -> None:
        self.bus = bus
        self.clock = clock
        self._queue: Deque[_PendingDispatch] = deque()
        self._dispatched = 0
        self._record_dispatch = record_dispatch
        self._dispatch_log: List[Tuple[str, str]] = []
        self._queue_high_water = 0
        self._observers: List[Any] = []

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Attach a passive dispatch observer.

        An observer may implement ``before_dispatch(topic_name, callback,
        message)`` and/or ``after_dispatch(topic_name, callback, message)``;
        missing hooks are skipped.  Observers run on the dispatch hot path,
        so when none are attached the cost is a single truthiness check.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, topic_name: str, payload: Any, frame_id: str) -> Message[Any]:
        """Publish ``payload`` on the named topic, stamped with the current time.

        Subscriber callbacks are queued, not run inline; call :meth:`spin`
        (or :meth:`spin_once`) to deliver them.
        """
        topic = self.bus.topic(topic_name)
        message = Message.create(payload, stamp=self.clock.now, frame_id=frame_id)
        for callback in topic.publish(message):
            self._queue.append(_PendingDispatch(topic_name, callback, message))
        if len(self._queue) > self._queue_high_water:
            self._queue_high_water = len(self._queue)
        return message

    def subscribe(self, topic_name: str, callback: SubscriberCallback) -> Topic:
        """Subscribe a callback to the named topic, creating it if needed."""
        topic = self.bus.topic(topic_name)
        topic.subscribe(callback)
        return topic

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def spin_once(self) -> bool:
        """Deliver a single pending callback.

        Returns:
            True when a callback was delivered, False when the queue is empty.
        """
        if not self._queue:
            return False
        pending = self._queue.popleft()
        if self._record_dispatch:
            self._dispatch_log.append((pending.topic_name, pending.message.header.frame_id))
        if self._observers:
            for observer in self._observers:
                before = getattr(observer, "before_dispatch", None)
                if before is not None:
                    before(pending.topic_name, pending.callback, pending.message)
            pending.callback(pending.message)
            for observer in self._observers:
                after = getattr(observer, "after_dispatch", None)
                if after is not None:
                    after(pending.topic_name, pending.callback, pending.message)
        else:
            pending.callback(pending.message)
        self._dispatched += 1
        return True

    def spin(self, max_callbacks: int = 10_000) -> int:
        """Deliver queued callbacks until the queue drains.

        Callbacks may themselves publish, so the queue can grow while
        spinning; ``max_callbacks`` guards against a runaway publish loop.

        Returns:
            The number of callbacks delivered.

        Raises:
            RuntimeError: if the callback budget is exhausted, which almost
                always indicates two nodes publishing to each other in a
                cycle without a termination condition.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_callbacks:
                raise RuntimeError(
                    f"executor exceeded {max_callbacks} callbacks in one spin; "
                    "likely a publish cycle between nodes"
                )
            self.spin_once()
            delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of callbacks waiting to be delivered."""
        return len(self._queue)

    @property
    def dispatched(self) -> int:
        """Total callbacks delivered since construction."""
        return self._dispatched

    @property
    def queue_high_water(self) -> int:
        """Largest queue depth ever reached (peak concurrency of the graph)."""
        return self._queue_high_water

    @property
    def dispatch_log(self) -> List[Tuple[str, str]]:
        """(topic, publishing frame) per delivered callback, in dispatch order.

        Empty unless the executor was built with ``record_dispatch=True``.
        The log is the determinism witness for the node graph: two missions
        with the same seed must produce identical logs.
        """
        return list(self._dispatch_log)

    def dispatch_records(self) -> List[DispatchRecord]:
        """The dispatch log as typed :class:`DispatchRecord` rows."""
        return [
            DispatchRecord(topic=topic, frame_id=frame)
            for topic, frame in self._dispatch_log
        ]
