"""Topics and the topic bus.

A :class:`Topic` is a named, typed channel with a bounded history; a
:class:`TopicBus` is the registry connecting publishers to subscribers.  The
bus is deliberately synchronous and single-process: publishing a message
enqueues subscriber callbacks on the executor, which dispatches them in
publication order.  Communication latency is not "free" though — the mission
simulator charges a configurable serialisation cost per message through the
compute model, which is how the "comm" bars of Figure 11 arise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.middleware.message import Message

SubscriberCallback = Callable[[Message[Any]], None]


@dataclass(frozen=True, slots=True)
class TopicNamespace:
    """A prefix under which one participant's topics and node names live.

    The single-drone stack publishes on bare topic names (``/sense/scan``);
    a fleet runs N copies of the same graph on one shared bus, so each
    drone's topics are prefixed with its namespace (``/drone/0/sense/scan``).
    The **root namespace** (empty prefix, the default) resolves every base
    name to itself, which is what keeps the N=1 stack bit-identical to the
    pre-fleet one.

    Attributes:
        prefix: ``""`` for the root namespace, else a ``/``-led,
            non-``/``-terminated path segment such as ``/drone/3``.
    """

    prefix: str = ""

    def __post_init__(self) -> None:
        if self.prefix:
            if not self.prefix.startswith("/") or self.prefix.endswith("/"):
                raise ValueError(
                    "namespace prefix must start with '/' and not end with one: "
                    f"{self.prefix!r}"
                )

    @classmethod
    def for_drone(cls, drone_id: int) -> "TopicNamespace":
        """The canonical per-drone namespace, ``/drone/<id>``."""
        if drone_id < 0:
            raise ValueError("drone id cannot be negative")
        return cls(prefix=f"/drone/{int(drone_id)}")

    @property
    def is_root(self) -> bool:
        """True for the legacy single-drone namespace (empty prefix)."""
        return not self.prefix

    def topic(self, base: str) -> str:
        """Resolve a base topic name (``/sense/scan``) inside this namespace."""
        if not base.startswith("/"):
            raise ValueError(f"base topic names must start with '/': {base!r}")
        return self.prefix + base

    def node(self, base: str) -> str:
        """Resolve a base node name (``sense``) inside this namespace.

        Root keeps the bare name; a drone namespace yields ``drone/<id>/sense``
        so frame ids in a shared dispatch log identify the publisher.
        """
        if not base:
            raise ValueError("base node name must be non-empty")
        if self.is_root:
            return base
        return f"{self.prefix[1:]}/{base}"


class Topic:
    """A named channel with subscribers and a bounded message history."""

    def __init__(self, name: str, history_depth: int = 16, latched: bool = False) -> None:
        if not name or not name.startswith("/"):
            raise ValueError(f"topic names must be non-empty and start with '/': {name!r}")
        if history_depth < 1:
            raise ValueError("history depth must be at least 1")
        self.name = name
        self.latched = latched
        self._history: Deque[Message[Any]] = deque(maxlen=history_depth)
        self._subscribers: List[SubscriberCallback] = []
        self._publish_count = 0

    # ------------------------------------------------------------------
    # Publication / subscription
    # ------------------------------------------------------------------
    def subscribe(self, callback: SubscriberCallback) -> None:
        """Register a callback invoked for every future message.

        For latched topics the most recent message (if any) is delivered
        immediately, mirroring ROS latched publishers.
        """
        self._subscribers.append(callback)
        if self.latched and self._history:
            callback(self._history[-1])

    def unsubscribe(self, callback: SubscriberCallback) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def publish(self, message: Message[Any]) -> List[SubscriberCallback]:
        """Record the message and return the callbacks that should receive it.

        Dispatch itself is owned by the :class:`~repro.middleware.executor.
        Executor` so that callback ordering is centralised; the topic only
        answers "who is interested".
        """
        self._history.append(message)
        self._publish_count += 1
        return list(self._subscribers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[Message[Any]]:
        """The most recently published message, or ``None``."""
        return self._history[-1] if self._history else None

    @property
    def publish_count(self) -> int:
        """Total messages ever published on the topic."""
        return self._publish_count

    @property
    def subscriber_count(self) -> int:
        """Number of registered subscribers."""
        return len(self._subscribers)

    def history(self) -> List[Message[Any]]:
        """A copy of the retained message history (oldest first)."""
        return list(self._history)


@dataclass
class TopicBus:
    """Registry of topics keyed by name."""

    _topics: Dict[str, Topic] = field(default_factory=dict)

    def topic(self, name: str, history_depth: int = 16, latched: bool = False) -> Topic:
        """Return the named topic, creating it on first use.

        The latched flag and history depth are fixed by the first creator;
        later callers receive the existing topic unchanged.
        """
        existing = self._topics.get(name)
        if existing is not None:
            return existing
        created = Topic(name, history_depth=history_depth, latched=latched)
        self._topics[name] = created
        return created

    def __contains__(self, name: str) -> bool:
        return name in self._topics

    def names(self) -> List[str]:
        """Names of every registered topic, sorted."""
        return sorted(self._topics.keys())

    def total_messages(self) -> int:
        """Total messages published across every topic."""
        return sum(t.publish_count for t in self._topics.values())
