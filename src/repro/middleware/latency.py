"""Per-decision latency accounting.

Figure 11 of the paper breaks the end-to-end decision latency into
computation stages (point cloud, OctoMap, perception→planning, piecewise
planning, path smoothing, runtime) and communication stages between them.
The :class:`LatencyLedger` records one :class:`LatencyRecord` per stage per
decision so that the breakdown, the median latency reduction and the
zone-level variation statistics can all be reconstructed after a mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

# Canonical stage names, in pipeline order.  "comm" stages model the
# serialisation/deserialisation cost of passing data between nodes.
COMPUTE_STAGES: Sequence[str] = (
    "point_cloud",
    "octomap",
    "perception_to_planning",
    "piecewise_planning",
    "path_smoothing",
    "runtime",
)
COMM_STAGES: Sequence[str] = (
    "comm_point_cloud",
    "comm_octomap",
    "comm_planning",
    "comm_control",
)
ALL_STAGES: Sequence[str] = tuple(COMPUTE_STAGES) + tuple(COMM_STAGES)

#: Naming convention separating communication hops from compute stages.
COMM_STAGE_PREFIX = "comm_"


def is_comm_stage(stage: str) -> bool:
    """True when a stage name denotes a communication hop (``comm_*``)."""
    return stage.startswith(COMM_STAGE_PREFIX)


def compute_seconds(stage_latencies: Mapping[str, float]) -> float:
    """Sum of the computation (non-``comm_*``) stages, seconds.

    The single definition of the compute-vs-communication split used by the
    pipeline's CPU accounting, the decision traces and the trace records.
    """
    return sum(
        seconds
        for stage, seconds in stage_latencies.items()
        if not is_comm_stage(stage)
    )


def comm_seconds(stage_latencies: Mapping[str, float]) -> float:
    """Sum of the communication (``comm_*`` hop) stages, seconds."""
    return sum(
        seconds
        for stage, seconds in stage_latencies.items()
        if is_comm_stage(stage)
    )


@dataclass(frozen=True, slots=True)
class LatencyRecord:
    """Latency of one pipeline stage during one decision."""

    decision_index: int
    stage: str
    seconds: float
    timestamp: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("stage latency cannot be negative")


@dataclass
class DecisionLatency:
    """All stage latencies belonging to a single decision."""

    decision_index: int
    timestamp: float
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """End-to-end latency of the decision."""
        return sum(self.stages.values())

    @property
    def compute_total(self) -> float:
        """Sum of computation stages only."""
        return sum(v for k, v in self.stages.items() if k in COMPUTE_STAGES)

    @property
    def comm_total(self) -> float:
        """Sum of communication stages only."""
        return sum(v for k, v in self.stages.items() if k in COMM_STAGES)

    def share(self, stage: str) -> float:
        """Fraction of the end-to-end latency consumed by one stage."""
        total = self.total
        if total == 0:
            return 0.0
        return self.stages.get(stage, 0.0) / total


class LatencyLedger:
    """Accumulates per-stage latency records across a mission."""

    def __init__(self) -> None:
        self._records: List[LatencyRecord] = []
        self._decisions: Dict[int, DecisionLatency] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self, decision_index: int, stage: str, seconds: float, timestamp: float
    ) -> LatencyRecord:
        """Record the latency of one stage of one decision."""
        if stage not in ALL_STAGES:
            raise ValueError(f"unknown pipeline stage {stage!r}; expected one of {ALL_STAGES}")
        rec = LatencyRecord(decision_index, stage, seconds, timestamp)
        self._records.append(rec)
        decision = self._decisions.get(decision_index)
        if decision is None:
            decision = DecisionLatency(decision_index, timestamp)
            self._decisions[decision_index] = decision
        decision.stages[stage] = decision.stages.get(stage, 0.0) + seconds
        return rec

    def record_many(
        self, decision_index: int, stage_latencies: Mapping[str, float], timestamp: float
    ) -> None:
        """Record a full map of stage latencies for one decision."""
        for stage, seconds in stage_latencies.items():
            self.record(decision_index, stage, seconds, timestamp)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def decisions(self) -> List[DecisionLatency]:
        """Per-decision latencies, ordered by decision index."""
        return [self._decisions[i] for i in sorted(self._decisions.keys())]

    def stages_for(self, decision_index: int) -> Dict[str, float]:
        """Stage → seconds map of one decision (a copy; empty when unrecorded).

        The trace recorder reads the per-decision breakdown through this
        accessor when the cascade's final message is delivered.
        """
        decision = self._decisions.get(decision_index)
        return dict(decision.stages) if decision is not None else {}

    def end_to_end_latencies(self) -> List[float]:
        """End-to-end latency of every decision, in decision order."""
        return [d.total for d in self.decisions()]

    def stage_totals(self) -> Dict[str, float]:
        """Total seconds spent in each stage across the mission."""
        totals: Dict[str, float] = {}
        for rec in self._records:
            totals[rec.stage] = totals.get(rec.stage, 0.0) + rec.seconds
        return totals

    def stage_shares(self) -> Dict[str, float]:
        """Fraction of total latency consumed by each stage (Figure 11b)."""
        totals = self.stage_totals()
        grand = sum(totals.values())
        if grand == 0:
            return {stage: 0.0 for stage in totals}
        return {stage: seconds / grand for stage, seconds in totals.items()}

    def median_latency(self) -> float:
        """Median end-to-end decision latency."""
        return _median(self.end_to_end_latencies())

    def max_latency(self) -> float:
        """Worst-case end-to-end decision latency (0 when no decisions)."""
        latencies = self.end_to_end_latencies()
        return max(latencies) if latencies else 0.0

    def latency_range_in_window(self, t_start: float, t_end: float) -> float:
        """Max minus min end-to-end latency among decisions stamped in a window.

        The representative-mission analysis uses this to quantify how much
        latency varies inside each zone (the "0.15 s in zone B vs. 10–12.5 s
        in zones A/C" observation of §V-C).
        """
        window = [
            d.total for d in self.decisions() if t_start <= d.timestamp <= t_end
        ]
        if not window:
            return 0.0
        return max(window) - min(window)

    def total_compute_seconds(self) -> float:
        """Total computation (non-comm) seconds across the mission."""
        return sum(d.compute_total for d in self.decisions())

    def __len__(self) -> int:
        return len(self._records)


def _median(values: Iterable[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
