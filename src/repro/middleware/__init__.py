"""A deterministic, in-process publish/subscribe middleware.

The paper implements RoboRun "on top of the Robot Operating System (ROS),
which provides inter-process communication and common robotics libraries"
(§III-A).  ROS is not available offline, so this package supplies the subset
RoboRun actually relies on:

* a **simulated clock** (:class:`~repro.middleware.clock.SimClock`) so that
  per-decision latencies, deadlines and mission time are charged analytically
  and experiments are exactly reproducible;
* **topics, messages and nodes**
  (:mod:`~repro.middleware.topic`, :mod:`~repro.middleware.node`) implementing
  typed publish/subscribe with latched topics;
* a **single-threaded executor** (:class:`~repro.middleware.executor.Executor`)
  that dispatches callbacks deterministically in publication order; and
* a **latency ledger** (:class:`~repro.middleware.latency.LatencyLedger`)
  that records the per-stage compute and communication times that Figure 11's
  latency breakdown is built from.
"""

from repro.middleware.clock import SimClock
from repro.middleware.executor import Executor
from repro.middleware.latency import LatencyLedger, LatencyRecord
from repro.middleware.message import Header, Message
from repro.middleware.node import Node
from repro.middleware.topic import Topic, TopicBus

__all__ = [
    "Executor",
    "Header",
    "LatencyLedger",
    "LatencyRecord",
    "Message",
    "Node",
    "SimClock",
    "Topic",
    "TopicBus",
]
