"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in fully offline environments where pip cannot
create an isolated build environment (no network to fetch build dependencies).
"""

from setuptools import setup

setup()
