"""Test-session bootstrap.

Makes the ``repro`` package importable directly from the source tree so that
``pytest tests/`` and ``pytest benchmarks/`` work even in fully offline
environments where ``pip install -e .`` cannot create its isolated build
environment.  When the package is properly installed this is a no-op (the
installed location wins only if it appears earlier on ``sys.path``; both point
at the same files for an editable install).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
