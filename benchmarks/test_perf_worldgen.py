"""Benchmark: procedural world generation throughput (worlds/second).

Campaign fan-out regenerates every mission's world inside its worker, so
world construction sits on the campaign critical path: a sweep of W workers
over S specs pays S full world builds before a single decision runs.  This
benchmark times every registered archetype end to end — obstacle placement
plus the heterogeneity-field sampling pass — at the paper's mid-difficulty
knobs on a reduced-scale corridor, checks each build is deterministic, and
asserts a loose worlds/second floor so a pathological regression (e.g. an
accidentally quadratic placement loop) fails loudly rather than silently
tripling campaign times.

Run with ``-s`` to see the per-archetype table.
"""

import time

import pytest
from bench_io import write_bench
from conftest import print_table

from repro import EnvironmentConfig, WorldSpec, build_environment
from repro.worlds import archetype_names

# Reduced-scale corridor (the benchmark conftest's scale): mid density.
BENCH_ENV = EnvironmentConfig(
    obstacle_density=0.45, obstacle_spread=40.0, goal_distance=120.0, seed=11
)
REPEATS = 5
#: Loose floor: every archetype must build well over one world per second
#: (measured builds run one to two orders of magnitude faster than this).
MIN_WORLDS_PER_SECOND = 1.0


@pytest.mark.slow
def test_worldgen_throughput():
    rows = [["archetype", "obstacles", "field_samples", "worlds_per_s"]]
    failures = []
    results = {}
    for name in archetype_names():
        spec = WorldSpec(archetype=name)
        # Warm-up build, also used for the determinism spot check.
        reference = build_environment(BENCH_ENV, spec)
        start = time.perf_counter()
        for _ in range(REPEATS):
            environment = build_environment(BENCH_ENV, spec)
        elapsed = time.perf_counter() - start
        worlds_per_second = REPEATS / elapsed
        assert environment.world.obstacle_count() == reference.world.obstacle_count()
        assert environment.heterogeneity.samples == reference.heterogeneity.samples
        rows.append(
            [
                name,
                environment.world.obstacle_count(),
                len(environment.heterogeneity.samples),
                round(worlds_per_second, 1),
            ]
        )
        results[name] = {
            "obstacles": environment.world.obstacle_count(),
            "field_samples": len(environment.heterogeneity.samples),
            "worlds_per_s": worlds_per_second,
        }
        if worlds_per_second < MIN_WORLDS_PER_SECOND:
            failures.append((name, worlds_per_second))
    print_table("World generation throughput", rows)
    write_bench(
        "worldgen",
        results,
        timestamp=time.time(),
        config={
            "environment_seed": BENCH_ENV.seed,
            "obstacle_density": BENCH_ENV.obstacle_density,
            "repeats": REPEATS,
        },
    )
    assert not failures, f"archetypes below {MIN_WORLDS_PER_SECOND}/s: {failures}"
