"""Figure 5 and Table II: static vs dynamic latency/deadline, and knob ranges.

Figure 5 compares the worst-case static design against the dynamic
spatial-aware design as the environment around the drone changes.  The sweep
below drives the solver/governor across a congestion gradient (from tight
aisles to open sky) and prints the static and dynamic latency (5a) and
deadline (5b) at every step.  Table II's knob values are asserted directly.
"""

from conftest import print_table

from repro.core.baseline import SpatialObliviousRuntime
from repro.core.governor import Governor
from repro.core.policy import KnobLimits, STATIC_BASELINE_POLICY
from repro.core.profilers import SpaceProfile
from repro.geometry.vec3 import Vec3


def congestion_gradient(steps=8):
    """Profiles sweeping from very congested (tight gaps) to open sky."""
    profiles = []
    for i in range(steps):
        t = i / (steps - 1)
        gap = 0.6 + t * 24.0
        visibility = 4.0 + t * 36.0
        profiles.append(
            SpaceProfile(
                timestamp=float(i),
                gap_min=min(0.6 + t * 10.0, gap),
                gap_avg=gap,
                closest_obstacle=2.0 + t * 38.0,
                closest_unknown=visibility,
                visibility=visibility,
                sensor_volume=100_000.0 + t * 200_000.0,
                map_volume=50_000.0,
                velocity=1.0 + t * 1.5,
                position=Vec3(10.0 * i, 0, 5),
                trajectory=None,
            )
        )
    return profiles


def sweep():
    governor = Governor()
    baseline = SpatialObliviousRuntime()
    rows = [["step", "static_latency_s", "dynamic_latency_s", "static_deadline_s", "dynamic_deadline_s"]]
    for i, profile in enumerate(congestion_gradient()):
        dynamic = governor.decide(profile)
        static = baseline.decide(profile)
        rows.append(
            [
                i,
                round(static.predicted_latency, 3),
                round(dynamic.predicted_latency, 3),
                round(static.time_budget, 3),
                round(dynamic.time_budget, 3),
            ]
        )
    return rows


def test_fig5_static_vs_dynamic(benchmark):
    rows = benchmark(sweep)
    print_table("Figure 5: static (worst-case) vs dynamic latency and deadline", rows)
    static_latency = [r[1] for r in rows[1:]]
    dynamic_latency = [r[2] for r in rows[1:]]
    static_deadline = [r[3] for r in rows[1:]]
    dynamic_deadline = [r[4] for r in rows[1:]]
    # 5a: the dynamic design's latency never exceeds the static worst case and
    # is dramatically lower in open space.
    assert all(d <= s + 1e-6 for d, s in zip(dynamic_latency, static_latency))
    assert dynamic_latency[-1] < 0.25 * static_latency[-1]
    # 5b: the dynamic deadline meets or exceeds the static worst-case deadline
    # once the space opens up.
    assert dynamic_deadline[-1] > static_deadline[-1]
    assert len(set(static_deadline)) == 1


def test_tab2_knob_ranges(benchmark):
    def table_rows():
        limits = KnobLimits()
        ladder = limits.precision_ladder()
        return [
            ["knob", "static", "dynamic"],
            ["point cloud precision (m)", STATIC_BASELINE_POLICY.point_cloud_precision, f"[{ladder[0]} … {ladder[-1]}]"],
            ["octomap→planner precision (m)", STATIC_BASELINE_POLICY.map_to_planner_precision, f"[{ladder[0]} … {ladder[-1]}]"],
            ["octomap volume (m^3)", STATIC_BASELINE_POLICY.octomap_volume, f"[0 … {limits.octomap_volume_max}]"],
            ["octomap→planner volume (m^3)", STATIC_BASELINE_POLICY.map_to_planner_volume, f"[0 … {limits.map_to_planner_volume_max}]"],
            ["planner volume (m^3)", STATIC_BASELINE_POLICY.planner_volume, f"[0 … {limits.planner_volume_max}]"],
        ]

    rows = benchmark(table_rows)
    print_table("Table II: knob values (static baseline vs dynamic ranges)", rows)
    assert rows[1][1] == 0.3
    assert rows[3][1] == 46_000.0
    assert "9.6" in rows[1][2]
    assert "1000000" in rows[4][2].replace("_", "")
