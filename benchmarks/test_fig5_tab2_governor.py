"""Figure 5 and Table II: static vs dynamic latency/deadline, and knob ranges.

Figure 5 compares the worst-case static design against the dynamic
spatial-aware design as the environment around the drone changes.  The sweep
(:func:`repro.analysis.figures.fig5_model_table`, shared with the campaign
report CLI) drives the solver/governor across a congestion gradient (from
tight aisles to open sky) and prints the static and dynamic latency (5a) and
deadline (5b) at every step.  Table II's knob values are asserted directly.
"""

from conftest import print_table

from repro.analysis.figures import fig5_model_table
from repro.core.policy import KnobLimits, STATIC_BASELINE_POLICY


def test_fig5_static_vs_dynamic(benchmark):
    table = benchmark(fig5_model_table)
    rows = table.as_rows()
    print_table(table.title, rows)
    static_latency = [r[1] for r in rows[1:]]
    dynamic_latency = [r[2] for r in rows[1:]]
    static_deadline = [r[3] for r in rows[1:]]
    dynamic_deadline = [r[4] for r in rows[1:]]
    # 5a: the dynamic design's latency never exceeds the static worst case and
    # is dramatically lower in open space.
    assert all(d <= s + 1e-6 for d, s in zip(dynamic_latency, static_latency))
    assert dynamic_latency[-1] < 0.25 * static_latency[-1]
    # 5b: the dynamic deadline meets or exceeds the static worst-case deadline
    # once the space opens up.
    assert dynamic_deadline[-1] > static_deadline[-1]
    assert len(set(static_deadline)) == 1


def test_tab2_knob_ranges(benchmark):
    def table_rows():
        limits = KnobLimits()
        ladder = limits.precision_ladder()
        return [
            ["knob", "static", "dynamic"],
            ["point cloud precision (m)", STATIC_BASELINE_POLICY.point_cloud_precision, f"[{ladder[0]} … {ladder[-1]}]"],
            ["octomap→planner precision (m)", STATIC_BASELINE_POLICY.map_to_planner_precision, f"[{ladder[0]} … {ladder[-1]}]"],
            ["octomap volume (m^3)", STATIC_BASELINE_POLICY.octomap_volume, f"[0 … {limits.octomap_volume_max}]"],
            ["octomap→planner volume (m^3)", STATIC_BASELINE_POLICY.map_to_planner_volume, f"[0 … {limits.map_to_planner_volume_max}]"],
            ["planner volume (m^3)", STATIC_BASELINE_POLICY.planner_volume, f"[0 … {limits.planner_volume_max}]"],
        ]

    rows = benchmark(table_rows)
    print_table("Table II: knob values (static baseline vs dynamic ranges)", rows)
    assert rows[1][1] == 0.3
    assert rows[3][1] == 46_000.0
    assert "9.6" in rows[1][2]
    assert "1000000" in rows[4][2].replace("_", "")
