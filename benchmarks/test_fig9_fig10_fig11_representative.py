"""Figures 9–11: representative-mission analysis.

* Figure 9 — the congestion heat map of the mission environment plus the
  trajectories travelled.
* Figure 10 — flight time (10a), velocity (10b) and precision over time (10c)
  per design.
* Figure 11 — end-to-end latency breakdown by pipeline stage over time (11a)
  and the normalised per-stage share (11b).
"""

import pytest
from conftest import print_table

# Mission-level benchmark: flies full missions through the simulator.
pytestmark = pytest.mark.slow

from repro.environment.generator import EnvironmentGenerator
from repro.middleware.latency import COMM_STAGES, COMPUTE_STAGES
from repro.simulation.metrics import summarise_zone_velocity


def test_fig9_mission_map(benchmark, mission_pair):
    def rows():
        env = mission_pair["roborun"].environment
        heat = EnvironmentGenerator().congestion_map(env, cell=30.0)
        congested_cells = sum(1 for v in heat.values() if v > 0.05)
        out = [["quantity", "value"]]
        out.append(["heat-map cells", len(heat)])
        out.append(["congested cells (density > 0.05)", congested_cells])
        for name, result in mission_pair.items():
            out.append([f"{name} trajectory points", len(result.traces)])
            out.append(
                [f"{name} path length (m)", round(result.metrics.distance_travelled_m, 1)]
            )
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_table("Figure 9: congestion heat map and travelled trajectories", table)
    assert table[1][1] > 0
    assert table[2][1] > 0


def test_fig10_time_velocity_precision(benchmark, mission_pair):
    def rows():
        out = [["design", "flight time (s)", "mean velocity (m/s)", "zone velocities", "precision levels used"]]
        for name, result in mission_pair.items():
            zone_velocity = {
                k: round(v, 2) for k, v in summarise_zone_velocity(result.traces).items()
            }
            precisions = sorted({t.policy["point_cloud_precision"] for t in result.traces})
            out.append(
                [
                    name,
                    round(result.metrics.mission_time_s, 1),
                    round(result.metrics.mean_velocity_mps, 2),
                    zone_velocity,
                    precisions,
                ]
            )
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_table("Figure 10: flight time, velocity and precision over the mission", table)
    roborun = mission_pair["roborun"]
    baseline = mission_pair["spatial_oblivious"]
    # 10a/10b: RoboRun's peak flying speed exceeds the baseline's and it does
    # not take longer to finish (mean path velocity can dip below the
    # baseline's at reduced scale because RoboRun's replans wander more).
    assert max(t.speed for t in roborun.traces) > max(t.speed for t in baseline.traces)
    assert roborun.metrics.mission_time_s <= baseline.metrics.mission_time_s * 1.05
    # 10c: RoboRun varies precision across zones; the baseline never does.
    assert len({t.policy["point_cloud_precision"] for t in roborun.traces}) > 1
    assert len({t.policy["point_cloud_precision"] for t in baseline.traces}) == 1


def test_fig11_latency_breakdown(benchmark, mission_pair):
    def rows():
        out = [["design", "median latency (s)", "max latency (s)", "top stages by share"]]
        for name, result in mission_pair.items():
            shares = result.ledger.stage_shares()
            top = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)[:4]
            out.append(
                [
                    name,
                    round(result.ledger.median_latency(), 3),
                    round(result.ledger.max_latency(), 3),
                    [(stage, round(share, 3)) for stage, share in top],
                ]
            )
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_table("Figure 11: end-to-end latency breakdown", table)
    roborun = mission_pair["roborun"]
    baseline = mission_pair["spatial_oblivious"]
    # 11a: RoboRun's median end-to-end latency is below the baseline's.
    assert roborun.ledger.median_latency() < baseline.ledger.median_latency()
    # 11b: every share is a valid fraction and the breakdown covers both
    # computation and communication stages.
    for result in mission_pair.values():
        shares = result.ledger.stage_shares()
        assert all(0.0 <= s <= 1.0 for s in shares.values())
        assert any(stage in shares for stage in COMPUTE_STAGES)
        assert any(stage in shares for stage in COMM_STAGES)
