"""Figures 3 and 4: high-precision and high-velocity mission traces.

Figure 3 contrasts the spatial-oblivious design's constant worst-case
precision/volume/latency with the spatial-aware design's adaptive ones on a
high-precision (warehouse-aisle) mission; Figure 4 does the same for
velocity/visibility/deadline on a high-velocity mission.  The reduced-scale
mission pair provides both sets of per-decision traces.
"""

import pytest
from conftest import print_table

# Mission-level benchmark: flies full missions through the simulator.
pytestmark = pytest.mark.slow


def _summary(traces, key):
    values = [t.policy[key] if key in t.policy else getattr(t, key) for t in traces]
    return round(min(values), 3), round(max(values), 3)


def test_fig3_high_precision_mission(benchmark, mission_pair):
    def rows():
        out = [["design", "precision range (m)", "octomap volume range (m^3)", "latency range (s)"]]
        for name, result in mission_pair.items():
            traces = result.traces
            p_lo, p_hi = _summary(traces, "point_cloud_precision")
            v_lo, v_hi = _summary(traces, "octomap_volume")
            l_lo, l_hi = _summary(traces, "end_to_end_latency")
            out.append([name, f"{p_lo}–{p_hi}", f"{v_lo}–{v_hi}", f"{l_lo}–{l_hi}"])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_table("Figure 3: precision / volume / latency, oblivious vs aware", table)
    baseline_traces = mission_pair["spatial_oblivious"].traces
    roborun_traces = mission_pair["roborun"].traces
    # Oblivious: constant worst-case precision.  Aware: varies it.
    assert len({t.policy["point_cloud_precision"] for t in baseline_traces}) == 1
    assert len({t.policy["point_cloud_precision"] for t in roborun_traces}) > 1
    # Aware design's finest precision matches the baseline's worst case.
    assert min(t.policy["point_cloud_precision"] for t in roborun_traces) == 0.3


def test_fig4_high_velocity_mission(benchmark, mission_pair):
    def rows():
        out = [["design", "velocity cap range (m/s)", "visibility range (m)", "deadline range (s)"]]
        for name, result in mission_pair.items():
            traces = result.traces
            caps = [t.velocity_cap for t in traces]
            vis = [t.visibility for t in traces]
            budgets = [t.time_budget for t in traces]
            out.append(
                [
                    name,
                    f"{round(min(caps),2)}–{round(max(caps),2)}",
                    f"{round(min(vis),1)}–{round(max(vis),1)}",
                    f"{round(min(budgets),2)}–{round(max(budgets),2)}",
                ]
            )
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_table("Figure 4: velocity / visibility / deadline, oblivious vs aware", table)
    baseline_traces = mission_pair["spatial_oblivious"].traces
    roborun_traces = mission_pair["roborun"].traces
    # Oblivious: one fixed velocity cap and one fixed deadline.
    assert len({round(t.velocity_cap, 6) for t in baseline_traces}) == 1
    assert len({round(t.time_budget, 6) for t in baseline_traces}) == 1
    # Aware: adapts its deadline, and its best velocity cap beats the baseline's.
    assert len({round(t.time_budget, 3) for t in roborun_traces}) > 1
    assert max(t.velocity_cap for t in roborun_traces) > max(
        t.velocity_cap for t in baseline_traces
    )
