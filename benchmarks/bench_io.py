"""Unified benchmark-result I/O: one schema for every ``BENCH_*.json``.

Every perf suite (fleet throughput, spatial-index microbenchmarks, world
generation) funnels its numbers through :func:`write_bench` so the committed
``BENCH_<suite>.json`` files share one shape and accumulate a comparable
perf trajectory PR over PR:

.. code-block:: json

    {
      "schema_version": 1,
      "suite": "fleet",
      "git_rev": "58e64ee",
      "timestamp": 1754600000.0,
      "machine": {"platform": "...", "python": "...", "cpu_count": 1},
      "config": {"...suite-specific knobs..."},
      "results": {"...suite-specific metrics..."}
    }

The *runner* passes the timestamp in (``time.time()`` at the end of the
measured run) so the schema layer stays deterministic and testable.  Metric
keys ending in ``_per_s`` or ``_speedup`` are the comparable, higher-is-better
numbers that ``check_perf_regression.py`` gates on.

Results land in the repo root by default; set the ``BENCH_OUT_DIR``
environment variable (as the CI perf-smoke job does) to redirect fresh runs
somewhere else so they can be compared against the committed baselines
instead of overwriting them.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Any, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

SCHEMA_VERSION = 1

#: Suffixes that mark a results key as a comparable higher-is-better metric.
COMPARABLE_SUFFIXES = ("_per_s", "_speedup")


def git_revision() -> Optional[str]:
    """The short git revision of the repo, or None outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def machine_info() -> Dict[str, Any]:
    """A small fingerprint of the machine the benchmark ran on.

    Absolute throughput numbers are only comparable on similar machines; the
    fingerprint is recorded so a cross-machine comparison can be recognised
    for what it is.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def bench_path(suite: str, out_dir: Optional[Path] = None) -> Path:
    """Where ``BENCH_<suite>.json`` lives.

    Precedence: explicit ``out_dir`` argument, then the ``BENCH_OUT_DIR``
    environment variable, then the repo root.
    """
    if out_dir is None:
        env_dir = os.environ.get("BENCH_OUT_DIR")
        out_dir = Path(env_dir) if env_dir else REPO_ROOT
    return Path(out_dir) / f"BENCH_{suite}.json"


def write_bench(
    suite: str,
    results: Dict[str, Any],
    timestamp: float,
    config: Optional[Dict[str, Any]] = None,
    out_dir: Optional[Path] = None,
) -> Path:
    """Write one suite's results in the unified schema and return the path."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "git_rev": git_revision(),
        "timestamp": timestamp,
        "machine": machine_info(),
        "config": dict(config) if config else {},
        "results": results,
    }
    path = bench_path(suite, out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def read_bench(path: Path) -> Dict[str, Any]:
    """Load one ``BENCH_*.json`` file."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def comparable_metrics(results: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten a results dict to its comparable higher-is-better metrics.

    Walks nested dicts and returns ``{"dotted.path": value}`` for every
    numeric leaf whose key ends in one of :data:`COMPARABLE_SUFFIXES`.
    """
    flat: Dict[str, float] = {}
    if isinstance(results, dict):
        for key, value in results.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                flat.update(comparable_metrics(value, dotted))
            elif isinstance(value, (int, float)) and str(key).endswith(
                COMPARABLE_SUFFIXES
            ):
                flat[dotted] = float(value)
    return flat
