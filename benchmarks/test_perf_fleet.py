"""Fleet throughput benchmark: decisions/sec as the fleet grows.

Flies the benchmark environment (seed 11) as a fleet of 1, 2 and 4 drones on
one shared world, bus and executor, and measures whole-fleet decision
throughput.  Peer drones cost real work — every drone's scan, octomap
re-mark and collision probes see its peers as dynamic obstacles — so
throughput per drone degrades gracefully rather than staying flat; the
emitted ``BENCH_fleet.json`` records the curve so regressions in the fleet
hot path (peer folding, octree re-marking, namespace dispatch) show up as a
drop in decisions/sec.

Run with ``-s`` to see the scaling table.
"""

import time

import pytest
from bench_io import write_bench
from conftest import BENCH_ENV, print_table

from repro import FleetSimulator, MissionConfig, build_environment
from repro.core.runtime import RoboRunRuntime
from repro.worlds import WorldSpec

FLEET_SIZES = (1, 2, 4)

# Trimmed mission: enough decisions for stable timing, small enough that the
# three fleet runs stay within the suite's minutes-of-pure-Python budget.
FLEET_MISSION = MissionConfig(max_decisions=120, max_mission_time_s=400.0)


@pytest.mark.slow
def test_fleet_throughput_scaling():
    rows = [["n_drones", "decisions", "wall_s", "decisions_per_s"]]
    results = {}
    for n in FLEET_SIZES:
        environment = build_environment(BENCH_ENV, WorldSpec())
        simulator = FleetSimulator(
            environment,
            RoboRunRuntime,
            FLEET_MISSION,
            n_drones=n,
        )
        start = time.perf_counter()
        result = simulator.run()
        wall = time.perf_counter() - start
        decisions = int(result.metrics.decision_count)
        assert decisions > 0, f"fleet of {n} made no decisions"
        assert result.fleet.n_drones == n
        throughput = decisions / wall if wall > 0 else 0.0
        rows.append([n, decisions, round(wall, 2), round(throughput, 1)])
        results[str(n)] = {
            "decisions": decisions,
            "wall_s": wall,
            "decisions_per_s": throughput,
        }

    print_table("Fleet throughput (decisions/sec vs fleet size)", rows)
    path = write_bench(
        "fleet",
        results,
        timestamp=time.time(),
        config={
            "environment_seed": BENCH_ENV.seed,
            "mission": {
                "max_decisions": FLEET_MISSION.max_decisions,
                "max_mission_time_s": FLEET_MISSION.max_mission_time_s,
            },
            "fleet_sizes": list(FLEET_SIZES),
        },
    )
    assert path.exists()
