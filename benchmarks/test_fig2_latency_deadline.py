"""Figure 2: latency vs precision/volume (2a) and deadline vs speed/visibility (2b).

These are analytical sweeps of the two models the governor uses — the Eq. 4
latency model and the Eq. 1 time budget — and reproduce the monotone families
of curves in the paper's Figure 2.  The row construction lives in
:mod:`repro.analysis.figures` (the same aggregation the campaign report CLI
uses); the benchmark asserts the curves' shape.
"""

from conftest import print_table

from repro.analysis.figures import fig2a_model_table, fig2b_model_table


def test_fig2a_latency_vs_volume_and_precision(benchmark):
    table = benchmark(fig2a_model_table)
    rows = table.as_rows()
    print_table(table.title, rows)
    # Shape checks: latency grows with volume and with precision (smaller voxels).
    for row in rows[1:]:
        values = row[1:]
        assert values == sorted(values)
    finest = rows[1][1:]
    coarsest = rows[-1][1:]
    assert all(f > c for f, c in zip(finest, coarsest))


def test_fig2b_deadline_vs_speed_and_visibility(benchmark):
    table = benchmark(fig2b_model_table)
    rows = table.as_rows()
    print_table(table.title, rows)
    # Deadline shrinks with speed and grows with visibility.
    for row in rows[1:]:
        values = row[1:]
        assert values == sorted(values)
    col_fast = [row[1] for row in rows[1:]]
    assert col_fast == sorted(col_fast, reverse=True)
