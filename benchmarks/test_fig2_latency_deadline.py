"""Figure 2: latency vs precision/volume (2a) and deadline vs speed/visibility (2b).

These are analytical sweeps of the two models the governor uses — the Eq. 4
latency model and the Eq. 1 time budget — and reproduce the monotone families
of curves in the paper's Figure 2.
"""

from conftest import print_table

from repro.compute.latency_model import DEFAULT_STAGE_MODELS, STAGE_PERCEPTION
from repro.core.budget import TimeBudgeter

PRECISIONS = [0.3, 0.6, 1.2, 2.4, 4.8, 9.6]
VOLUMES = [10_000.0, 20_000.0, 40_000.0, 60_000.0]
SPEEDS = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
VISIBILITIES = [5.0, 10.0, 20.0, 40.0]


def fig2a_rows():
    model = DEFAULT_STAGE_MODELS[STAGE_PERCEPTION]
    rows = [["precision_m"] + [f"v={int(v)}" for v in VOLUMES]]
    for p in PRECISIONS:
        rows.append([p] + [round(model.latency(p, v), 4) for v in VOLUMES])
    return rows


def fig2b_rows():
    budgeter = TimeBudgeter()
    rows = [["speed_mps"] + [f"d={int(d)}m" for d in VISIBILITIES]]
    for v in SPEEDS:
        rows.append([v] + [round(budgeter.local_budget(v, d), 2) for d in VISIBILITIES])
    return rows


def test_fig2a_latency_vs_volume_and_precision(benchmark):
    rows = benchmark(fig2a_rows)
    print_table("Figure 2a: processing latency (s) vs volume, one curve per precision", rows)
    # Shape checks: latency grows with volume and with precision (smaller voxels).
    for row in rows[1:]:
        values = row[1:]
        assert values == sorted(values)
    finest = rows[1][1:]
    coarsest = rows[-1][1:]
    assert all(f > c for f, c in zip(finest, coarsest))


def test_fig2b_deadline_vs_speed_and_visibility(benchmark):
    rows = benchmark(fig2b_rows)
    print_table("Figure 2b: processing deadline (s) vs speed, one curve per visibility", rows)
    # Deadline shrinks with speed and grows with visibility.
    for row in rows[1:]:
        values = row[1:]
        assert values == sorted(values)
    col_fast = [row[1] for row in rows[1:]]
    assert col_fast == sorted(col_fast, reverse=True)
