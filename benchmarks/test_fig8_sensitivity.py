"""Figure 8: sensitivity to obstacle density, spread and goal distance.

The paper sweeps three values of each knob (Figure 8a) over 27 environments.
At reduced scale the harness sweeps the extreme values of one knob at a time
(low vs high density, spread and goal distance) and reports each design's
flight-time ratio across the sweep — the quantity Figures 8b–8d plot.
RoboRun is expected to be the *more* sensitive design for density/spread
(it exploits easy space) and the *less* sensitive one for goal distance.
"""

import dataclasses

import pytest
from conftest import BENCH_ENV, BENCH_MISSION, bench_spec, print_table

# Mission-level benchmark: flies full missions through the simulator.
pytestmark = pytest.mark.slow

from repro import CampaignRunner
from repro.analysis.figures import fig8_sensitivity
from repro.analysis.report import CampaignReport
from repro.environment.generator import (
    DENSITY_LEVELS,
    GOAL_DISTANCE_LEVELS_M,
    SPREAD_LEVELS_M,
)


def test_fig8a_evaluation_scenarios(benchmark):
    def rows():
        return [
            ["environment knob", "dynamic values"],
            ["obstacle density", list(DENSITY_LEVELS)],
            ["obstacle spread (m)", list(SPREAD_LEVELS_M)],
            ["goal distance (m)", list(GOAL_DISTANCE_LEVELS_M)],
        ]

    table = benchmark(rows)
    print_table("Figure 8a: evaluation scenario knobs", table)
    assert table[1][1] == [0.3, 0.45, 0.6]
    assert table[2][1] == [40.0, 80.0, 120.0]
    assert table[3][1] == [600.0, 900.0, 1200.0]


def _sweep(knob, low, high):
    """Fly the 2x2 sweep (design x knob value) as one parallel campaign.

    Aggregation goes through the shared
    :func:`repro.analysis.figures.fig8_sensitivity` — the same fold the
    campaign report CLI applies to saved traces.
    """
    designs = ("spatial_oblivious", "roborun")
    specs = [
        bench_spec(design, dataclasses.replace(BENCH_ENV, **{knob: value}), BENCH_MISSION)
        for design in designs
        for value in (low, high)
    ]
    campaign = CampaignRunner().run(specs)

    report = CampaignReport.from_campaign(campaign)
    table = fig8_sensitivity(report.missions, knob)
    return table.as_rows(), table.meta["ratios"]


@pytest.mark.slow
def test_fig8b_sensitivity_to_density(benchmark):
    (rows, ratios) = benchmark.pedantic(
        lambda: _sweep("obstacle_density", 0.3, 0.6), rounds=1, iterations=1
    )
    print_table("Figure 8b: flight-time sensitivity to obstacle density", rows)
    assert all(r > 0 for r in ratios.values())


@pytest.mark.slow
def test_fig8d_sensitivity_to_goal_distance(benchmark):
    (rows, ratios) = benchmark.pedantic(
        lambda: _sweep("goal_distance", 80.0, 160.0), rounds=1, iterations=1
    )
    print_table("Figure 8d: flight-time sensitivity to goal distance", rows)
    assert all(r > 0 for r in ratios.values())
