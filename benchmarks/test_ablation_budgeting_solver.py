"""Ablations called out in DESIGN.md.

* Global (Algorithm 1) vs local (plain Eq. 1) time budgeting.
* Solver with the power-of-two precision ladder vs a precision-oblivious
  fallback (always finest precision).
"""

from conftest import print_table

from repro.core.budget import TimeBudgeter, WaypointObservation
from repro.core.solver import KnobSolver
from repro.core.profilers import SpaceProfile
from repro.geometry.vec3 import Vec3


def _profile(gap, visibility):
    return SpaceProfile(
        timestamp=0.0,
        gap_min=min(gap, 0.6),
        gap_avg=gap,
        closest_obstacle=visibility,
        closest_unknown=visibility,
        visibility=visibility,
        sensor_volume=200_000.0,
        map_volume=50_000.0,
        velocity=1.5,
        position=Vec3.zero(),
        trajectory=None,
    )


def test_ablation_global_vs_local_budget(benchmark):
    def rows():
        budgeter = TimeBudgeter()
        # The drone currently enjoys open space but a tight corridor is coming up.
        waypoints = [
            WaypointObservation(0.0, 1.5, 35.0),
            WaypointObservation(10.0, 2.0, 20.0),
            WaypointObservation(20.0, 2.5, 5.0),
        ]
        local_only = budgeter.local_budget(waypoints[0].velocity, waypoints[0].visibility)
        global_budget = budgeter.global_budget(waypoints)
        return [
            ["policy", "budget (s)"],
            ["local only (Eq. 1 at W0)", round(local_only, 2)],
            ["global (Algorithm 1 over W)", round(global_budget, 2)],
        ]

    table = benchmark(rows)
    print_table("Ablation: local vs global time budgeting", table)
    # Algorithm 1 is strictly more conservative when a tight waypoint is ahead.
    assert table[2][1] < table[1][1]


def test_ablation_precision_ladder_vs_finest(benchmark):
    def rows():
        solver = KnobSolver()
        open_profile = _profile(gap=25.0, visibility=40.0)
        adaptive = solver.solve(5.0, open_profile)
        finest = solver._fallback_policy(open_profile)
        finest_latency = solver._predict(finest) + solver.latency_model.fixed_overhead_s
        return [
            ["solver", "precision (m)", "predicted latency (s)"],
            [
                "adaptive (Eq. 3 over ladder)",
                adaptive.policy.point_cloud_precision,
                round(adaptive.predicted_latency, 3),
            ],
            ["always-finest fallback", finest.point_cloud_precision, round(finest_latency, 3)],
        ]

    table = benchmark(rows)
    print_table("Ablation: adaptive precision ladder vs always-finest", table)
    assert table[1][1] > table[2][1]  # adaptive picks a coarser precision in open space
    assert table[1][2] <= table[2][2] + 1e-6
