"""Perf regression gate: fresh ``BENCH_*.json`` vs the committed baselines.

The CI perf-smoke job regenerates the perf suites with ``BENCH_OUT_DIR``
pointing at a scratch directory, then runs this script to compare every
comparable metric (keys ending in ``_per_s`` or ``_speedup`` — see
``bench_io.COMPARABLE_SUFFIXES``) against the baselines committed in the repo
root.  A metric that drops more than the threshold (default 30%) fails the
job; metrics that improved or moved within the band pass.

Skips gracefully (exit 0) when a baseline file does not exist yet, so the
gate can be enabled before the first baselines land — and so deleting a
stale baseline (e.g. after a deliberate benchmark redesign) disarms the gate
for one PR instead of blocking it.

Usage::

    python benchmarks/check_perf_regression.py --fresh-dir bench_fresh \
        [--baseline-dir .] [--threshold 0.30] [--suite fleet ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_io import REPO_ROOT, comparable_metrics, read_bench  # noqa: E402

DEFAULT_SUITES = ("fleet", "spatial", "worldgen", "obs")
DEFAULT_THRESHOLD = 0.30


def compare_suite(suite, baseline_dir, fresh_dir, threshold):
    """Compare one suite; returns (regressions, lines) for the report."""
    baseline_path = Path(baseline_dir) / f"BENCH_{suite}.json"
    fresh_path = Path(fresh_dir) / f"BENCH_{suite}.json"
    if not baseline_path.exists():
        return [], [f"[{suite}] no committed baseline at {baseline_path} — skipped"]
    if not fresh_path.exists():
        # A missing fresh file means the suite did not run; that is a harness
        # problem, not a perf regression, and must not pass silently.
        return (
            [f"[{suite}] fresh results missing at {fresh_path}"],
            [f"[{suite}] fresh results missing at {fresh_path} — FAIL"],
        )

    baseline = comparable_metrics(read_bench(baseline_path).get("results", {}))
    fresh = comparable_metrics(read_bench(fresh_path).get("results", {}))

    regressions = []
    lines = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in fresh:
            regressions.append(f"[{suite}] {key}: present in baseline, missing fresh")
            lines.append(f"[{suite}] {key}: missing from fresh results — FAIL")
            continue
        new = fresh[key]
        if base <= 0:
            lines.append(f"[{suite}] {key}: baseline {base:.4g} non-positive — skipped")
            continue
        ratio = new / base
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        lines.append(
            f"[{suite}] {key}: baseline {base:.4g} -> fresh {new:.4g} "
            f"({ratio:.2f}x) {status}"
        )
        if status == "REGRESSION":
            regressions.append(
                f"[{suite}] {key} fell {100 * (1 - ratio):.1f}% "
                f"({base:.4g} -> {new:.4g}), threshold {100 * threshold:.0f}%"
            )
    if not baseline:
        lines.append(f"[{suite}] baseline has no comparable metrics — skipped")
    return regressions, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir",
        required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(REPO_ROOT),
        help="directory holding the committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated fractional drop (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=DEFAULT_SUITES,
        help="suite(s) to check (default: all three)",
    )
    args = parser.parse_args(argv)

    suites = tuple(args.suite) if args.suite else DEFAULT_SUITES
    all_regressions = []
    for suite in suites:
        regressions, lines = compare_suite(
            suite, args.baseline_dir, args.fresh_dir, args.threshold
        )
        for line in lines:
            print(line)
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\n{len(all_regressions)} perf regression(s) beyond the gate:")
        for item in all_regressions:
            print("  " + item)
        return 1
    print("\nperf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
