"""Microbenchmark: the incremental spatial index vs the seed's linear rescans.

The seed implementation answered every hot per-decision map query by
rescanning the full occupied-voxel set: ``nearest_occupied_distance`` was a
linear scan, ``coarse_occupied_cells`` a full re-aggregation and
``build_tree`` re-filtered the whole set once per tree node.  This benchmark
rebuilds those reference implementations verbatim, runs them against the
index-backed octree on a ≥10k-voxel map (the scale of a fully observed local
map), checks the answers agree exactly, and asserts the index is at least 3×
faster on each query family.

Run with ``-s`` to see the timing table.
"""

import random
import time

import pytest
from bench_io import write_bench
from conftest import print_table

from repro.geometry.grid import voxel_center
from repro.geometry.vec3 import Vec3
from repro.perception.octomap import OccupancyOctree, OctreeNode

VOX_MIN = 0.3
LEVELS = 6
MIN_VOXELS = 10_000
MIN_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# Reference implementations (verbatim ports of the seed's rescanning code)
# ----------------------------------------------------------------------
def legacy_nearest(occupied, point, max_radius):
    import math

    best_sq = max_radius * max_radius
    for key in occupied:
        center = voxel_center(key, VOX_MIN)
        dx = center.x - point.x
        dy = center.y - point.y
        dz = center.z - point.z
        d_sq = dx * dx + dy * dy + dz * dz
        if d_sq < best_sq:
            best_sq = d_sq
    return math.sqrt(best_sq)


def legacy_coarse(occupied, level):
    factor = 2**level
    cells = {}
    for (i, j, k) in occupied:
        coarse = (i // factor, j // factor, k // factor)
        cells[coarse] = cells.get(coarse, 0) + 1
    return cells


def legacy_build_tree(occupied):
    def build_node(key, level):
        resolution = VOX_MIN * (2**level)
        center = voxel_center(key, resolution)
        if level == 0:
            return OctreeNode(center=center, size=resolution, depth=0, occupied_leaves=1)
        child_level = level - 1
        child_factor = 2**child_level
        factor = 2**level
        child_keys = set()
        for (i, j, k) in occupied:
            if (i // factor, j // factor, k // factor) == key:
                child_keys.add((i // child_factor, j // child_factor, k // child_factor))
        children = [build_node(ck, child_level) for ck in sorted(child_keys)]
        return OctreeNode(
            center=center,
            size=resolution,
            depth=level,
            occupied_leaves=sum(c.occupied_leaves for c in children),
            children=children,
        )

    top_level = LEVELS - 1
    top_factor = 2**top_level
    top_keys = {(i // top_factor, j // top_factor, k // top_factor) for (i, j, k) in occupied}
    children = [build_node(key, top_level) for key in sorted(top_keys)]
    if len(children) == 1:
        return children[0]
    center = Vec3(
        sum(c.center.x for c in children) / len(children),
        sum(c.center.y for c in children) / len(children),
        sum(c.center.z for c in children) / len(children),
    )
    return OctreeNode(
        center=center,
        size=VOX_MIN * top_factor * 2,
        depth=top_level + 1,
        occupied_leaves=sum(c.occupied_leaves for c in children),
        children=children,
    )


# ----------------------------------------------------------------------
# Map construction and timing harness
# ----------------------------------------------------------------------
def build_map():
    """A local map of ~12k occupied voxels in wall/rack-like dense clusters."""
    rng = random.Random(17)
    octree = OccupancyOctree(vox_min=VOX_MIN, levels=LEVELS)
    keys = set()
    while len(keys) < 12_000:
        base = (rng.randint(-80, 80), rng.randint(-80, 80), rng.randint(0, 24))
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    keys.add((base[0] + i, base[1] + j, base[2] + k))
    for key in keys:
        octree.mark_occupied(voxel_center(key, VOX_MIN))
    assert octree.occupied_voxel_count() >= MIN_VOXELS
    return octree


def best_of(callable_, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
def test_spatial_index_speedups():
    octree = build_map()
    occupied = octree.occupied_keys()
    rng = random.Random(23)
    queries = [
        Vec3(rng.uniform(-25, 25), rng.uniform(-25, 25), rng.uniform(0, 8))
        for _ in range(25)
    ]

    # Answers must agree exactly before timing means anything.
    for q in queries:
        assert octree.nearest_occupied_distance(q, 40.0) == legacy_nearest(
            occupied, q, 40.0
        )
    for precision in (0.3, 1.2, 2.4, 9.6):
        level = octree.coarsen_level_for(precision)
        assert octree.coarse_occupied_cells(precision) == legacy_coarse(occupied, level)
    new_root = octree.build_tree()
    old_root = legacy_build_tree(occupied)
    assert new_root.occupied_leaves == old_root.occupied_leaves == len(occupied)
    assert new_root.count_nodes() == old_root.count_nodes()

    # Timings: best-of to shave scheduler noise; the legacy tree build is run
    # once because a single pass already takes seconds at this scale — which
    # is the point of the index.
    t_nearest_new = best_of(
        lambda: [octree.nearest_occupied_distance(q, 40.0) for q in queries], 5
    )
    t_nearest_old = best_of(lambda: [legacy_nearest(occupied, q, 40.0) for q in queries], 2)
    t_coarse_new = best_of(lambda: octree.coarse_occupied_cells(2.4), 7)
    t_coarse_old = best_of(lambda: legacy_coarse(occupied, 3), 3)
    t_tree_new = best_of(octree.build_tree, 7)
    t_tree_old = best_of(lambda: legacy_build_tree(occupied), 1)

    rows = [
        ["query", "legacy (s)", "indexed (s)", "speedup"],
        [
            "nearest x25",
            f"{t_nearest_old:.4f}",
            f"{t_nearest_new:.4f}",
            f"{t_nearest_old / t_nearest_new:.1f}x",
        ],
        [
            "coarsen (2.4 m)",
            f"{t_coarse_old:.4f}",
            f"{t_coarse_new:.4f}",
            f"{t_coarse_old / t_coarse_new:.1f}x",
        ],
        [
            "build_tree",
            f"{t_tree_old:.4f}",
            f"{t_tree_new:.4f}",
            f"{t_tree_old / t_tree_new:.1f}x",
        ],
    ]
    print_table(
        f"Spatial index vs linear rescans ({len(occupied)} occupied voxels)", rows
    )

    write_bench(
        "spatial",
        {
            "nearest": {
                "legacy_s": t_nearest_old,
                "indexed_s": t_nearest_new,
                "queries_per_s": len(queries) / t_nearest_new,
                "index_speedup": t_nearest_old / t_nearest_new,
            },
            "coarsen": {
                "legacy_s": t_coarse_old,
                "indexed_s": t_coarse_new,
                "queries_per_s": 1.0 / t_coarse_new,
                "index_speedup": t_coarse_old / t_coarse_new,
            },
            "build_tree": {
                "legacy_s": t_tree_old,
                "indexed_s": t_tree_new,
                "queries_per_s": 1.0 / t_tree_new,
                "index_speedup": t_tree_old / t_tree_new,
            },
        },
        timestamp=time.time(),
        config={
            "occupied_voxels": len(occupied),
            "vox_min": VOX_MIN,
            "levels": LEVELS,
            "nearest_queries": len(queries),
        },
    )

    assert t_nearest_old / t_nearest_new >= MIN_SPEEDUP
    assert t_coarse_old / t_coarse_new >= MIN_SPEEDUP
    assert t_tree_old / t_tree_new >= MIN_SPEEDUP
