"""Shared fixtures for the benchmark harness.

Every mission-level benchmark reuses a single pair of missions (RoboRun and
the spatial-oblivious baseline) flown through a reduced-scale environment.
The paper's environments are 600–1200 m; the reduced scale (120 m, mild
density) keeps the full benchmark suite runnable in minutes of pure Python
while preserving the A/B *shape* — which design wins and by roughly what
factor — that EXPERIMENTS.md records.  Scale the parameters back up for a
full-fidelity run.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    EnvironmentConfig,
    EnvironmentGenerator,
    MissionConfig,
    MissionSimulator,
    RoboRunRuntime,
    SpatialObliviousRuntime,
)

# Reduced-scale stand-in for the paper's mid-difficulty environment.
BENCH_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=40.0, goal_distance=120.0, seed=11
)
BENCH_MISSION = MissionConfig(max_decisions=500, max_mission_time_s=1500.0)


def run_mission(design: str, env_config: EnvironmentConfig = BENCH_ENV, mission=BENCH_MISSION):
    """Fly one mission for the named design and return its MissionResult."""
    env = EnvironmentGenerator().generate(env_config)
    runtime = RoboRunRuntime() if design == "roborun" else SpatialObliviousRuntime()
    return MissionSimulator(env, runtime, mission).run()


@pytest.fixture(scope="session")
def mission_pair():
    """One RoboRun mission and one baseline mission on the shared environment."""
    return {
        "roborun": run_mission("roborun"),
        "spatial_oblivious": run_mission("spatial_oblivious"),
    }


def print_table(title, rows):
    """Print a small aligned table to stdout (captured with pytest -s)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + " | ".join(str(item) for item in row))
