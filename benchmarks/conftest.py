"""Shared fixtures for the benchmark harness.

Every mission-level benchmark reuses a single pair of missions (RoboRun and
the spatial-oblivious baseline) flown through a reduced-scale environment.
The paper's environments are 600–1200 m; the reduced scale (120 m, mild
density) keeps the full benchmark suite runnable in minutes of pure Python
while preserving the A/B *shape* — which design wins and by roughly what
factor — that EXPERIMENTS.md records.  Scale the parameters back up for a
full-fidelity run.

The benchmarks are built on the scenario layer: each mission is a
:class:`ScenarioSpec`, and multi-mission sweeps go through the
:class:`CampaignRunner` so they parallelise across cores where available.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    CampaignRunner,
    EnvironmentConfig,
    MissionConfig,
    ScenarioSpec,
)

# Reduced-scale stand-in for the paper's mid-difficulty environment.
BENCH_ENV = EnvironmentConfig(
    obstacle_density=0.3, obstacle_spread=40.0, goal_distance=120.0, seed=11
)
BENCH_MISSION = MissionConfig(max_decisions=500, max_mission_time_s=1500.0)


def bench_spec(design: str, env_config: EnvironmentConfig = BENCH_ENV, mission=BENCH_MISSION):
    """The scenario spec for one benchmark mission of the named design."""
    return ScenarioSpec(
        name=f"bench_{design}_{env_config.label()}",
        design=design,
        environment=env_config,
        mission=mission,
    )


@pytest.fixture(scope="session")
def mission_pair():
    """One RoboRun mission and one baseline mission on the shared environment.

    The pair is flown as a two-scenario campaign (parallel when the machine
    has the cores for it) with full results kept for the trace-level figures.
    """
    specs = [bench_spec("roborun"), bench_spec("spatial_oblivious")]
    campaign = CampaignRunner().run(specs, keep_results=True)
    return {
        outcome.spec.design: outcome.result for outcome in campaign.outcomes
    }


def print_table(title, rows):
    """Print a small aligned table to stdout (captured with pytest -s)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + " | ".join(str(item) for item in row))
