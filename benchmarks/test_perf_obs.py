"""Observability overhead benchmark: the tap must be nearly free.

Flies the benchmark environment twice — once bare, once with a live
:class:`~repro.obs.tap.ObsTap` collecting spans and metrics — and records
both throughputs plus their ratio in ``BENCH_obs.json``:

* ``disabled_decisions_per_s`` — the plain mission, which is the number the
  obs-overhead CI gate compares against the committed baseline (with no tap
  attached the only obs residue is one truthiness check per dispatch and
  two per decision);
* ``enabled_decisions_per_s`` — the same mission fully instrumented;
* ``enabled_vs_disabled_speedup`` — enabled ÷ disabled.  As a ``_speedup``
  metric it is gated by ``check_perf_regression.py``, so a future change
  that makes the *enabled* tap drastically more expensive fails CI too.

Run with ``-s`` to see the comparison table.
"""

import time

import pytest
from bench_io import write_bench
from conftest import BENCH_ENV, print_table

from repro import MissionConfig, MissionSimulator, ObsTap, build_environment
from repro.core.runtime import RoboRunRuntime
from repro.worlds import WorldSpec

OBS_MISSION = MissionConfig(max_decisions=150, max_mission_time_s=500.0)


def _fly(tap=None):
    environment = build_environment(BENCH_ENV, WorldSpec())
    simulator = MissionSimulator(environment, RoboRunRuntime(), OBS_MISSION)
    taps = (tap,) if tap is not None else ()
    start = time.perf_counter()
    result = simulator.run(taps=taps)
    wall = time.perf_counter() - start
    decisions = int(result.metrics.decision_count)
    assert decisions > 0
    return decisions, wall


@pytest.mark.slow
def test_obs_overhead():
    # Bare first, then instrumented, interleaved warm-up free: both runs
    # rebuild the world from the same seed, so the work is identical.
    disabled_decisions, disabled_wall = _fly()
    tap = ObsTap()
    enabled_decisions, enabled_wall = _fly(tap=tap)
    tap.finish()
    assert enabled_decisions == disabled_decisions, (
        "the tap changed the mission's decision count"
    )
    assert len(tap.tracer.events) > 0

    disabled_tput = disabled_decisions / disabled_wall
    enabled_tput = enabled_decisions / enabled_wall
    ratio = enabled_tput / disabled_tput

    print_table(
        "Observability overhead (decisions/sec)",
        [
            ["mode", "decisions", "wall_s", "decisions_per_s"],
            ["disabled", disabled_decisions, round(disabled_wall, 2),
             round(disabled_tput, 1)],
            ["enabled", enabled_decisions, round(enabled_wall, 2),
             round(enabled_tput, 1)],
        ],
    )

    path = write_bench(
        "obs",
        {
            "disabled": {
                "decisions": disabled_decisions,
                "wall_s": disabled_wall,
                "disabled_decisions_per_s": disabled_tput,
            },
            "enabled": {
                "decisions": enabled_decisions,
                "wall_s": enabled_wall,
                "enabled_decisions_per_s": enabled_tput,
            },
            "overhead": {"enabled_vs_disabled_speedup": ratio},
        },
        timestamp=time.time(),
        config={
            "environment_seed": BENCH_ENV.seed,
            "mission": {
                "max_decisions": OBS_MISSION.max_decisions,
                "max_mission_time_s": OBS_MISSION.max_mission_time_s,
            },
        },
    )
    assert path.exists()
