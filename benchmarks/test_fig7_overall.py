"""Figure 7: mission-level metrics for the two designs.

The paper reports, averaged over 27 environments: 5X velocity, 4.5X mission
time, 4X energy and a 36% CPU-utilisation reduction in RoboRun's favour.  The
reduced-scale harness flies one environment pair (see ``conftest.BENCH_ENV``),
folds it through the shared :func:`repro.analysis.figures.fig7_overall`
aggregator (the same code path the campaign report CLI uses) and prints the
same four rows; EXPERIMENTS.md records the measured ratios.
"""

import pytest
from conftest import print_table

from repro.analysis.figures import fig7_overall
from repro.analysis.trace import MissionRecord

# Mission-level benchmark: flies full missions through the simulator.
pytestmark = pytest.mark.slow


def test_fig7_mission_level_metrics(benchmark, mission_pair):
    def rows():
        records = [
            MissionRecord.from_result(result, spec_name=design)
            for design, result in mission_pair.items()
        ]
        return fig7_overall(records).as_rows()

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_table("Figure 7: mission-level metrics (reduced-scale environment)", table)
    roborun = mission_pair["roborun"].metrics
    baseline = mission_pair["spatial_oblivious"].metrics
    # Shape: RoboRun finishes the mission no slower than the static baseline
    # and with a (much) lower median decision latency.  Mean velocity over the
    # whole path can dip below the baseline's at reduced scale because
    # RoboRun's replans wander more (see EXPERIMENTS.md); flight time and the
    # per-zone velocities are the robust mission-level signals.
    assert roborun.mission_time_s <= baseline.mission_time_s * 1.05
    assert roborun.median_latency_s < baseline.median_latency_s
    # Both designs produce decisions and energy follows mission time.
    assert roborun.decision_count > 0 and baseline.decision_count > 0
    if roborun.mission_time_s < baseline.mission_time_s:
        assert roborun.energy_j < baseline.energy_j
